(* Tests for the static distance oracle and the goal-directed search
   kernel built on it: the accelerated paths must be byte-identical to
   the unaccelerated reference on arbitrary topologies, masks and
   budgets, and the oracle itself must match fresh BFS distances. *)

let torus44 () = Net.Builders.torus ~rows:4 ~cols:4 ~capacity:10.0

(* Random mostly-connected multigraph: a duplex ring plus random chords,
   so searches see cycles, parallel links and the occasional one-way
   shortcut. *)
let random_topo rng =
  let n = 2 + Sim.Prng.int rng 30 in
  let t = Net.Topology.create ~num_nodes:n in
  for v = 0 to n - 1 do
    ignore (Net.Topology.add_duplex t ~a:v ~b:((v + 1) mod n) ~capacity:10.0)
  done;
  for _ = 1 to Sim.Prng.int rng (2 * n) do
    let a = Sim.Prng.int rng n and b = Sim.Prng.int rng n in
    if a <> b then ignore (Net.Topology.add_link t ~src:a ~dst:b ~capacity:10.0)
  done;
  t

(* Run [f] with the acceleration toggled off, restoring it on the way
   out so a failing property cannot poison later tests. *)
let with_reference f =
  Routing.Shortest.set_oracle_disabled true;
  Fun.protect ~finally:(fun () -> Routing.Shortest.set_oracle_disabled false) f

(* ---------- units ---------- *)

let test_matches_bfs () =
  let t = torus44 () in
  let o = Routing.Oracle.for_topo t in
  for dst = 0 to Net.Topology.num_nodes t - 1 do
    let d = Routing.Shortest.hop_distance_to t ~dst in
    Array.iteri
      (fun v expect ->
        Alcotest.(check int)
          (Printf.sprintf "dist %d->%d" v dst)
          expect
          (Routing.Oracle.distance o ~src:v ~dst))
      d
  done

let test_unreachable () =
  let t = Net.Topology.create ~num_nodes:3 in
  (* one-way chain 0 -> 1 -> 2: nothing reaches 0 *)
  ignore (Net.Topology.add_link t ~src:0 ~dst:1 ~capacity:1.0);
  ignore (Net.Topology.add_link t ~src:1 ~dst:2 ~capacity:1.0);
  let o = Routing.Oracle.for_topo t in
  Alcotest.(check int) "forward" 2 (Routing.Oracle.distance o ~src:0 ~dst:2);
  Alcotest.(check bool) "no reverse path" true
    (Routing.Oracle.distance o ~src:2 ~dst:0 = max_int)

let test_lazy_memoised () =
  let t = torus44 () in
  Alcotest.(check bool) "not built yet" false (Routing.Oracle.cached t);
  let o1 = Routing.Oracle.for_topo t in
  Alcotest.(check bool) "built now" true (Routing.Oracle.cached t);
  let o2 = Routing.Oracle.for_topo t in
  Alcotest.(check bool) "memoised (same matrix)" true (o1 == o2)

let test_add_link_invalidates () =
  let t = Net.Topology.create ~num_nodes:3 in
  ignore (Net.Topology.add_link t ~src:0 ~dst:1 ~capacity:1.0);
  ignore (Net.Topology.add_link t ~src:1 ~dst:2 ~capacity:1.0);
  let o = Routing.Oracle.for_topo t in
  Alcotest.(check int) "chain" 2 (Routing.Oracle.distance o ~src:0 ~dst:2);
  ignore (Net.Topology.add_link t ~src:0 ~dst:2 ~capacity:1.0);
  Alcotest.(check bool) "stale entry dropped" false (Routing.Oracle.cached t);
  let o' = Routing.Oracle.for_topo t in
  Alcotest.(check bool) "rebuilt" true (not (o == o'));
  Alcotest.(check int) "shortcut seen" 1 (Routing.Oracle.distance o' ~src:0 ~dst:2)

let test_int16_guard () =
  let t = Net.Topology.create ~num_nodes:70_000 in
  Alcotest.(check bool) "opt is None" true (Routing.Oracle.for_topo_opt t = None);
  (match Routing.Oracle.for_topo t with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "for_topo must refuse 70k nodes");
  (* The search layer degrades gracefully: no oracle, plain BFS. *)
  ignore (Net.Topology.add_link t ~src:0 ~dst:1 ~capacity:1.0);
  Alcotest.(check (option int))
    "shortest_hops still works" (Some 1)
    (Routing.Shortest.shortest_hops t ~src:0 ~dst:1)

let test_cross_domain_sharing () =
  let t = torus44 () in
  let o = Routing.Oracle.for_topo t in
  let expect = Routing.Oracle.distance o ~src:0 ~dst:15 in
  let worker () =
    Routing.Oracle.for_topo t == o
    && Routing.Oracle.distance o ~src:0 ~dst:15 = expect
  in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  Alcotest.(check bool) "domain 1 shares" true (Domain.join d1);
  Alcotest.(check bool) "domain 2 shares" true (Domain.join d2)

(* hop_distance results must stay private to the caller (the workspace
   refactor could have leaked the reusable scratch array). *)
let test_bfs_distances_fresh_array () =
  let t = torus44 () in
  let d1 = Routing.Shortest.hop_distance t ~src:0 in
  let snapshot = Array.copy d1 in
  let d2 = Routing.Shortest.hop_distance t ~src:5 in
  Alcotest.(check bool) "first result unchanged" true (d1 = snapshot);
  d2.(0) <- 12345;
  let d3 = Routing.Shortest.hop_distance t ~src:5 in
  Alcotest.(check bool) "caller mutation invisible" true (d3.(0) <> 12345 || d3 != d2)

(* ---------- equivalence fuzz ---------- *)

(* One random scenario: topology, banned nodes/links, endpoints, budget. *)
let scenario seed =
  let rng = Sim.Prng.create seed in
  let topo = random_topo rng in
  let n = Net.Topology.num_nodes topo in
  let m = Net.Topology.num_links topo in
  let node_banned = Array.init n (fun _ -> Sim.Prng.int rng 8 = 0) in
  let link_banned = Array.init m (fun _ -> Sim.Prng.int rng 8 = 0) in
  let node_ok v = not node_banned.(v) in
  let link_ok (l : Net.Topology.link) = not link_banned.(l.Net.Topology.id) in
  let src = Sim.Prng.int rng n in
  let dst = (src + 1 + Sim.Prng.int rng (n - 1)) mod n in
  let budget = 1 + Sim.Prng.int rng (n + 2) in
  (topo, link_ok, node_ok, src, dst, budget)

let prop_pruned_search_byte_identical =
  QCheck.Test.make ~name:"pruned budgeted search = reference, link for link"
    ~count:300 QCheck.small_nat (fun seed ->
      let topo, link_ok, node_ok, src, dst, budget = scenario seed in
      let run () =
        Routing.Shortest.shortest_path ~link_ok ~node_ok ~max_hops:budget topo
          ~src ~dst
      in
      let reference = with_reference run in
      let accelerated = run () in
      Option.map Net.Path.links accelerated
      = Option.map Net.Path.links reference)

let prop_shortest_hops_equal =
  QCheck.Test.make ~name:"bidirectional shortest_hops = reference search"
    ~count:300 QCheck.small_nat (fun seed ->
      let topo, link_ok, node_ok, src, dst, _ = scenario seed in
      let run () =
        ( Routing.Shortest.shortest_hops ~link_ok ~node_ok topo ~src ~dst,
          Routing.Shortest.shortest_hops topo ~src ~dst )
      in
      with_reference run = run ())

let prop_oracle_equals_fresh_bfs =
  QCheck.Test.make ~name:"oracle distances = fresh BFS" ~count:100
    QCheck.small_nat (fun seed ->
      let rng = Sim.Prng.create seed in
      let topo = random_topo rng in
      let o = Routing.Oracle.for_topo topo in
      let n = Net.Topology.num_nodes topo in
      let dst = Sim.Prng.int rng n in
      let d = Routing.Shortest.hop_distance_to topo ~dst in
      Array.for_all
        (fun v -> Routing.Oracle.distance o ~src:v ~dst = d.(v))
        (Array.init n Fun.id))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "oracle"
    [
      ( "units",
        [
          Alcotest.test_case "matches BFS on torus" `Quick test_matches_bfs;
          Alcotest.test_case "unreachable sentinel" `Quick test_unreachable;
          Alcotest.test_case "lazy + memoised" `Quick test_lazy_memoised;
          Alcotest.test_case "add_link invalidates" `Quick
            test_add_link_invalidates;
          Alcotest.test_case "int16 overflow guard" `Quick test_int16_guard;
          Alcotest.test_case "cross-domain sharing" `Quick
            test_cross_domain_sharing;
          Alcotest.test_case "hop_distance arrays are fresh" `Quick
            test_bfs_distances_fresh_array;
        ] );
      qsuite "equivalence"
        [
          prop_pruned_search_byte_identical;
          prop_shortest_hops_equal;
          prop_oracle_equals_fresh_bfs;
        ];
    ]
