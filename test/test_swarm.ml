(* Tests for the adversarial deterministic-simulation swarm: scheduler
   perturbation (Sim.Schedule + engine event classes), combinatorial
   fault plans (Failures.Plan), lineage-reproducible coverage-guided
   search (Eval.Swarm) and the delta-debugging minimizer with its
   replayable bcp-audit/v1 artifacts (Eval.Minimize). *)

let cid conn serial = Bcp.Protocol.cid ~conn ~serial

let trans node channel from_ to_ cause =
  Sim.Event.Chan_transition { node; channel; from_; to_; cause }

let torus4 = Eval.Setup.topology_of Eval.Setup.Torus4

(* One establishment shared by every simulator-level test below; each
   test creates its own Simnet over it (reconfiguration writeback is off
   by default, so runs do not contaminate each other). *)
let est4 = lazy (Eval.Setup.build Eval.Setup.Torus4)

(* ---------- engine perturbation hook ---------- *)

let test_engine_klass_perturb () =
  let e = Sim.Engine.create () in
  let order = ref [] in
  let record tag () = order := (tag, Sim.Engine.now e) :: !order in
  Sim.Engine.set_perturb e
    (Some
       (fun klass ~delay:_ ->
         match klass with
         | Sim.Engine.Message -> 0.5
         | Sim.Engine.Timer -> 0.1
         | Sim.Engine.Internal -> 0.0));
  ignore
    (Sim.Engine.schedule_after ~klass:Sim.Engine.Message e ~delay:0.1
       (record "msg"));
  ignore
    (Sim.Engine.schedule_after ~klass:Sim.Engine.Timer e ~delay:0.1
       (record "timer"));
  ignore (Sim.Engine.schedule_after e ~delay:0.1 (record "internal"));
  Sim.Engine.run e;
  let fired = List.rev !order in
  Alcotest.(check (list string))
    "internal first, then delayed timer, then delayed message"
    [ "internal"; "timer"; "msg" ]
    (List.map fst fired);
  List.iter2
    (fun (tag, at) expect ->
      Alcotest.(check (float 1e-12)) (tag ^ " fire time") expect at)
    fired
    [ 0.1; 0.2; 0.6 ]

(* The hook must never be consulted for Internal events even when set:
   fault injections and the RCC pump stay exactly on time. *)
let test_internal_never_perturbed () =
  let e = Sim.Engine.create () in
  let consulted = ref 0 in
  Sim.Engine.set_perturb e
    (Some
       (fun _ ~delay:_ ->
         incr consulted;
         0.0));
  ignore (Sim.Engine.schedule e ~at:0.3 (fun () -> ()));
  ignore (Sim.Engine.schedule_after e ~delay:0.1 (fun () -> ()));
  Sim.Engine.run e;
  Alcotest.(check int) "hook never consulted for Internal" 0 !consulted

(* ---------- Sim.Schedule ---------- *)

let test_schedule_make_validation () =
  let expect_invalid label f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" label
  in
  expect_invalid "negative delay" (fun () ->
      Sim.Schedule.make ~msg_delay:(-1.0) ());
  expect_invalid "rate above 1" (fun () -> Sim.Schedule.make ~msg_rate:1.5 ());
  expect_invalid "nan delay" (fun () ->
      Sim.Schedule.make ~timer_delay:Float.nan ());
  Alcotest.(check bool) "disabled is disabled" true
    (Sim.Schedule.is_disabled Sim.Schedule.disabled);
  Alcotest.(check bool) "delay without rate is disabled" true
    (Sim.Schedule.is_disabled (Sim.Schedule.make ~msg_delay:0.01 ()));
  Alcotest.(check bool) "live profile is not disabled" false
    (Sim.Schedule.is_disabled
       (Sim.Schedule.make ~msg_delay:0.01 ~msg_rate:0.5 ()))

let test_schedule_determinism_and_bounds () =
  let profile =
    Sim.Schedule.make ~msg_delay:0.002 ~msg_rate:0.5 ~timer_delay:0.01
      ~timer_rate:0.25 ()
  in
  let a = Sim.Schedule.create ~seed:9 profile in
  let b = Sim.Schedule.create ~seed:9 profile in
  let c = Sim.Schedule.create ~seed:10 profile in
  let draws_differ = ref false in
  for _ = 1 to 500 do
    let da = Sim.Schedule.hook a Sim.Engine.Message ~delay:0.001 in
    let db = Sim.Schedule.hook b Sim.Engine.Message ~delay:0.001 in
    let dc = Sim.Schedule.hook c Sim.Engine.Message ~delay:0.001 in
    Alcotest.(check (float 0.0)) "same seed, same draw" da db;
    if da <> dc then draws_differ := true;
    Alcotest.(check bool) "message delay within bound" true
      (da >= 0.0 && da <= 0.002);
    let ta = Sim.Schedule.hook a Sim.Engine.Timer ~delay:0.001 in
    let tb = Sim.Schedule.hook b Sim.Engine.Timer ~delay:0.001 in
    Alcotest.(check (float 0.0)) "timer draws agree too" ta tb;
    Alcotest.(check bool) "timer delay within bound" true
      (ta >= 0.0 && ta <= 0.01);
    Alcotest.(check (float 0.0)) "internal is never delayed" 0.0
      (Sim.Schedule.hook a Sim.Engine.Internal ~delay:0.001)
  done;
  Alcotest.(check bool) "different seeds diverge" true !draws_differ;
  Alcotest.(check int) "perturbation counters agree" (Sim.Schedule.perturbed a)
    (Sim.Schedule.perturbed b);
  Alcotest.(check bool) "a live profile perturbs something" true
    (Sim.Schedule.perturbed a > 0)

(* Run one failure scenario on the shared torus and return its full
   telemetry stream serialized to JSONL (byte-comparable). *)
let scenario_trace ?schedule () =
  let est = Lazy.force est4 in
  let sim = Bcp.Simnet.create ~telemetry:true est.Eval.Setup.ns in
  (match schedule with
  | Some sched -> Sim.Schedule.attach sched (Bcp.Simnet.engine sim)
  | None -> ());
  Bcp.Simnet.fail_link sim ~at:0.01 3;
  Bcp.Simnet.run ~until:0.2 sim;
  Bcp.Simnet.finalize sim;
  Eval.Telemetry.events_to_jsonl
    (List.map
       (fun (t, ev) -> (0, t, ev))
       (Sim.Trace.events (Bcp.Simnet.trace sim)))

let test_disabled_schedule_byte_identical () =
  let bare = scenario_trace () in
  let sched = Sim.Schedule.create ~seed:5 Sim.Schedule.disabled in
  let with_disabled = scenario_trace ~schedule:sched () in
  Alcotest.(check int) "no event was perturbed" 0 (Sim.Schedule.perturbed sched);
  Alcotest.(check bool) "trace byte-identical to no-schedule run" true
    (String.equal bare with_disabled)

let test_enabled_schedule_changes_run () =
  let profile =
    Sim.Schedule.make ~msg_delay:0.005 ~msg_rate:0.5 ~timer_delay:0.01
      ~timer_rate:0.5 ()
  in
  let sched = Sim.Schedule.create ~seed:5 profile in
  let perturbed_trace = scenario_trace ~schedule:sched () in
  Alcotest.(check bool) "events were actually delayed" true
    (Sim.Schedule.perturbed sched > 0);
  Alcotest.(check bool) "trace differs from the bare run" false
    (String.equal (scenario_trace ()) perturbed_trace);
  (* Same seed + profile replays the exact same perturbed run. *)
  let again =
    scenario_trace ~schedule:(Sim.Schedule.create ~seed:5 profile) ()
  in
  Alcotest.(check bool) "perturbed run replays byte-identically" true
    (String.equal perturbed_trace again)

(* ---------- Failures.Plan ---------- *)

let test_plan_generate_deterministic () =
  let gen seed = Failures.Plan.generate (Sim.Prng.create seed) torus4 () in
  Alcotest.(check string) "same seed, same plan"
    (Failures.Plan.to_json (gen 3))
    (Failures.Plan.to_json (gen 3));
  Alcotest.(check bool) "different seeds explore different plans" false
    (String.equal
       (Failures.Plan.to_json (gen 3))
       (Failures.Plan.to_json (gen 4)))

let check_plan_valid label (p : Failures.Plan.t) =
  Alcotest.(check bool) (label ^ ": at least one fault") true
    (List.length p.Failures.Plan.faults >= 1);
  List.iter
    (fun f ->
      Alcotest.(check bool) (label ^ ": fail_at in window") true
        (f.Failures.Plan.fail_at >= 0.009);
      match f.Failures.Plan.repair_at with
      | None -> ()
      | Some r ->
        Alcotest.(check bool) (label ^ ": repair strictly after failure") true
          (r > f.Failures.Plan.fail_at))
    p.Failures.Plan.faults;
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      a.Failures.Plan.fail_at <= b.Failures.Plan.fail_at && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) (label ^ ": faults sorted by time") true
    (sorted p.Failures.Plan.faults)

let test_plan_mutate_valid_and_deterministic () =
  let base = Failures.Plan.generate (Sim.Prng.create 7) torus4 () in
  check_plan_valid "generated" base;
  (* Walk a long mutation chain: every step stays valid, and replaying
     the chain from the same seeds reproduces it exactly. *)
  let walk seed =
    let p = ref base in
    for i = 1 to 20 do
      p := Failures.Plan.mutate (Sim.Prng.create (seed + i)) torus4 !p;
      check_plan_valid (Printf.sprintf "mutation %d" i) !p
    done;
    Failures.Plan.to_json !p
  in
  Alcotest.(check string) "mutation chain replays" (walk 100) (walk 100)

let test_plan_random_chaos_baseline () =
  let p = Failures.Plan.random_chaos (Sim.Prng.create 5) torus4 in
  Alcotest.(check int) "single fault" 1 (List.length p.Failures.Plan.faults);
  Alcotest.(check bool) "no repair" true
    (List.for_all
       (fun f -> f.Failures.Plan.repair_at = None)
       p.Failures.Plan.faults);
  Alcotest.(check bool) "no scheduler perturbation" true
    (Sim.Schedule.is_disabled p.Failures.Plan.perturb)

(* ---------- lineage reproducibility ---------- *)

let test_plan_of_lineage () =
  let plan lineage =
    Failures.Plan.to_json
      (Eval.Swarm.plan_of_lineage ~seed:11 ~strategy:Eval.Swarm.Coverage torus4
         lineage)
  in
  Alcotest.(check string) "lineage replays exactly" (plan [ 3; 0; 1 ])
    (plan [ 3; 0; 1 ]);
  Alcotest.(check bool) "sibling lineages diverge" false
    (String.equal (plan [ 3; 0; 1 ]) (plan [ 3; 0; 2 ]));
  Alcotest.(check bool) "different roots diverge" false
    (String.equal (plan [ 3 ]) (plan [ 4 ]));
  (match
     (Eval.Swarm.plan_of_lineage ~seed:11 ~strategy:Eval.Swarm.Random torus4
        [ 2 ])
       .Failures.Plan.faults
   with
  | [ _ ] -> ()
  | fs -> Alcotest.failf "random root should hold 1 fault, got %d"
            (List.length fs));
  match
    Eval.Swarm.plan_of_lineage ~seed:11 ~strategy:Eval.Swarm.Coverage torus4 []
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty lineage should be rejected"

(* ---------- swarm determinism and coverage ---------- *)

let swarm_summary ?(strategy = Eval.Swarm.Coverage) ~jobs ~budget () =
  let est = Lazy.force est4 in
  let saved = Sim.Pool.current_jobs () in
  Sim.Pool.set_jobs jobs;
  let report =
    Eval.Swarm.run ~seed:7 ~budget ~strategy ~network:"torus4"
      est.Eval.Setup.ns
  in
  Sim.Pool.set_jobs saved;
  report

let test_swarm_jobs_byte_identical () =
  let summary jobs =
    Eval.Json.to_string
      (Eval.Swarm.report_to_json (swarm_summary ~jobs ~budget:12 ()))
  in
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
    at 0
  in
  let one = summary 1 in
  Alcotest.(check bool) "summary mentions the swarm schema" true
    (contains ~needle:"bcp-swarm/v1" one);
  Alcotest.(check string) "jobs=1 and jobs=2 summaries byte-identical" one
    (summary 2);
  Alcotest.(check string) "repeated run byte-identical" one (summary 1)

let test_swarm_coverage_beats_random () =
  let coverage strategy =
    List.length (swarm_summary ~strategy ~jobs:2 ~budget:16 ()).Eval.Swarm.coverage
  in
  let guided = coverage Eval.Swarm.Coverage in
  let random = coverage Eval.Swarm.Random in
  Alcotest.(check bool)
    (Printf.sprintf "coverage-guided (%d) strictly beats random (%d)" guided
       random)
    true (guided > random)

let test_swarm_report_shape () =
  let r = swarm_summary ~jobs:2 ~budget:8 () in
  Alcotest.(check int) "budget honoured" 8 r.Eval.Swarm.executed;
  Alcotest.(check bool) "coverage non-empty" true
    (r.Eval.Swarm.coverage <> []);
  Alcotest.(check bool) "curve is monotone" true
    (let rec mono = function
       | (e1, c1) :: ((e2, c2) :: _ as rest) ->
         e1 < e2 && c1 <= c2 && mono rest
       | _ -> true
     in
     mono r.Eval.Swarm.curve);
  Alcotest.(check (list Alcotest.string)) "protocol audits green" []
    (List.map
       (fun v -> Sim.Monitor.kind_to_string v.Eval.Swarm.kind)
       r.Eval.Swarm.violations)

(* ---------- minimizer + artifacts ---------- *)

(* The sentinel: a clean conn-6 recovery trace whose origin "detect" is
   rewritten into a propagated "report", padded with unrelated healthy
   recoveries on other connections that ddmin must strip away. *)
let clean_recovery conn t0 =
  [
    (0, t0, trans 0 (cid conn 0) Sim.Event.P Sim.Event.U "detect");
    (0, t0 +. 0.001, trans 1 (cid conn 0) Sim.Event.P Sim.Event.U "report");
    ( 0,
      t0 +. 0.002,
      Sim.Event.Activation { node = 1; conn; serial = 1; channel = cid conn 1 }
    );
    (0, t0 +. 0.002, trans 1 (cid conn 1) Sim.Event.B Sim.Event.P "activate");
    (0, t0 +. 0.003, trans 0 (cid conn 1) Sim.Event.B Sim.Event.P "activate");
  ]

let tampered_stream () =
  let tamper conn =
    List.map
      (function
        | sc, time, Sim.Event.Chan_transition ({ cause = "detect"; _ } as tr)
          ->
          (sc, time, Sim.Event.Chan_transition { tr with cause = "report" })
        | ev -> ev)
      (clean_recovery conn 0.01)
  in
  (* healthy noise before and after the tampered recovery *)
  clean_recovery 2 0.001 @ tamper 6 @ clean_recovery 9 0.02

let test_minimizer_sentinel () =
  let stream = tampered_stream () in
  match Eval.Minimize.minimize ~kind:Sim.Monitor.Phase_order stream with
  | None -> Alcotest.fail "sentinel violation should reproduce"
  | Some o ->
    Alcotest.(check int) "records the original stream length"
      (List.length stream) o.Eval.Minimize.original_events;
    Alcotest.(check bool) "minimized strictly smaller" true
      (List.length o.Eval.Minimize.events < List.length stream);
    Alcotest.(check bool) "oracle replays were spent" true
      (o.Eval.Minimize.replays > 0);
    (* The orphaned report alone is the 1-minimal reproduction. *)
    Alcotest.(check int) "shrunk to a single event" 1
      (List.length o.Eval.Minimize.events);
    (* The minimized stream replays to the same violation. *)
    let replay = Eval.Audit.replay o.Eval.Minimize.events in
    let kinds =
      List.concat_map
        (fun s ->
          List.map
            (fun v -> (v.Sim.Monitor.kind, v.Sim.Monitor.index))
            s.Eval.Audit.violations)
        replay.Eval.Audit.scenarios
    in
    Alcotest.(check bool) "replay reproduces the same kind and index" true
      (List.mem
         ( o.Eval.Minimize.violation.Sim.Monitor.kind,
           o.Eval.Minimize.violation.Sim.Monitor.index )
         kinds);
    Alcotest.(check bool) "and it is the sentinel kind" true
      (o.Eval.Minimize.violation.Sim.Monitor.kind = Sim.Monitor.Phase_order)

let test_minimizer_deterministic () =
  let stream = tampered_stream () in
  let shrink () =
    match Eval.Minimize.minimize ~kind:Sim.Monitor.Phase_order stream with
    | None -> Alcotest.fail "sentinel should reproduce"
    | Some o -> o.Eval.Minimize.events
  in
  Alcotest.(check bool) "two minimizations agree exactly" true
    (shrink () = shrink ())

let test_minimizer_none_when_absent () =
  (* A clean stream reproduces nothing. *)
  Alcotest.(check bool) "no violation, no outcome" true
    (Eval.Minimize.minimize ~kind:Sim.Monitor.Phase_order
       (clean_recovery 6 0.01)
    = None)

let test_artifact_roundtrip () =
  let o =
    match
      Eval.Minimize.minimize ~kind:Sim.Monitor.Phase_order (tampered_stream ())
    with
    | Some o -> o
    | None -> Alcotest.fail "sentinel should reproduce"
  in
  let plan = Failures.Plan.random_chaos (Sim.Prng.create 1) torus4 in
  let artifact =
    Eval.Swarm.artifact_of ~seed:11 ~strategy:Eval.Swarm.Coverage
      ~lineage:[ 0 ] ~plan ~replay_context:false o
  in
  let path = Filename.temp_file "bcp-swarm-artifact" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc (Eval.Json.to_string artifact);
      close_out oc;
      (* bcp_sim audit's loader recognizes the artifact and extracts the
         embedded minimized trace... *)
      match Eval.Audit.load_trace path with
      | Error e -> Alcotest.failf "artifact did not load: %s" e
      | Ok events ->
        Alcotest.(check bool) "embedded trace is the minimized stream" true
          (events = o.Eval.Minimize.events);
        (* ...and replaying it reproduces the sentinel violation. *)
        let replay = Eval.Audit.replay events in
        Alcotest.(check bool) "replay reproduces the violation" true
          (List.exists
             (fun s ->
               List.exists
                 (fun v -> v.Sim.Monitor.kind = Sim.Monitor.Phase_order)
                 s.Eval.Audit.violations)
             replay.Eval.Audit.scenarios))

let test_load_trace_diagnostics () =
  (match Eval.Audit.load_trace "/nonexistent/trace.jsonl" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file should be an error");
  let path = Filename.temp_file "bcp-bad-artifact" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"schema\":\"bcp-audit/v1\"}";
      close_out oc;
      match Eval.Audit.load_trace path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "artifact without a trace should be an error")

let () =
  Alcotest.run "swarm"
    [
      ( "engine",
        [
          Alcotest.test_case "event classes and perturb hook" `Quick
            test_engine_klass_perturb;
          Alcotest.test_case "internal events exempt" `Quick
            test_internal_never_perturbed;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "profile validation" `Quick
            test_schedule_make_validation;
          Alcotest.test_case "seeded determinism and bounds" `Quick
            test_schedule_determinism_and_bounds;
          Alcotest.test_case "disabled profile byte-identical" `Slow
            test_disabled_schedule_byte_identical;
          Alcotest.test_case "enabled profile perturbs deterministically"
            `Slow test_enabled_schedule_changes_run;
        ] );
      ( "plan",
        [
          Alcotest.test_case "generate deterministic" `Quick
            test_plan_generate_deterministic;
          Alcotest.test_case "mutate valid and replayable" `Quick
            test_plan_mutate_valid_and_deterministic;
          Alcotest.test_case "random chaos baseline" `Quick
            test_plan_random_chaos_baseline;
          Alcotest.test_case "lineage reproducibility" `Quick
            test_plan_of_lineage;
        ] );
      ( "swarm",
        [
          Alcotest.test_case "jobs-count byte identity" `Slow
            test_swarm_jobs_byte_identical;
          Alcotest.test_case "coverage beats random" `Slow
            test_swarm_coverage_beats_random;
          Alcotest.test_case "report shape" `Slow test_swarm_report_shape;
        ] );
      ( "minimize",
        [
          Alcotest.test_case "sentinel shrinks and replays" `Quick
            test_minimizer_sentinel;
          Alcotest.test_case "minimization deterministic" `Quick
            test_minimizer_deterministic;
          Alcotest.test_case "absent violation yields none" `Quick
            test_minimizer_none_when_absent;
          Alcotest.test_case "artifact round-trip" `Quick
            test_artifact_roundtrip;
          Alcotest.test_case "loader diagnostics" `Quick
            test_load_trace_diagnostics;
        ] );
    ]
