(* Flat state layout: dense-id interning units plus QCheck equivalence of
   the flat admission/mux hot path against the retained map-based
   reference.

   The equivalence property drives random scenario prefixes (establish /
   add-backup / remove / drain) through two identical netstates, one with
   [Netstate.set_self_check] enabled — every mutation then recomputes the
   spare requirement from first principles over the flat tables and
   asserts it matches the incremental value — and checks that the two
   evolve identically (same admission verdicts, loads and spare levels).
   A third run routes establishment through the speculative
   [Establish.plan] / [try_commit] pair and must match the serial
   [establish] transcript exactly. *)

let bw1 = Rtchan.Traffic.of_bandwidth 1.0

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---------------- dense-id interning units ---------------- *)

let test_ids_stability () =
  let ids = Bcp.Netstate.Ids.create ~kind:"unit" () in
  for expect = 0 to 99 do
    Alcotest.(check int) "dense ascending" expect (Bcp.Netstate.Ids.fresh ids)
  done;
  Alcotest.(check int) "watermark" 100 (Bcp.Netstate.Ids.watermark ids);
  Alcotest.(check int) "live" 100 (Bcp.Netstate.Ids.live_count ids)

let test_ids_recycling () =
  let ids = Bcp.Netstate.Ids.create ~kind:"unit" () in
  let _a = Bcp.Netstate.Ids.fresh ids in
  let b = Bcp.Netstate.Ids.fresh ids in
  let c = Bcp.Netstate.Ids.fresh ids in
  Bcp.Netstate.Ids.release ids b;
  Bcp.Netstate.Ids.release ids c;
  (* LIFO: the most recently released id comes back first, keeping the
     live set dense under churn. *)
  Alcotest.(check int) "lifo first" c (Bcp.Netstate.Ids.fresh ids);
  Alcotest.(check int) "lifo second" b (Bcp.Netstate.Ids.fresh ids);
  Alcotest.(check int) "watermark unchanged" 3 (Bcp.Netstate.Ids.watermark ids);
  Alcotest.(check bool) "mem live" true (Bcp.Netstate.Ids.mem ids b);
  Bcp.Netstate.Ids.release ids b;
  Alcotest.(check bool) "mem released" false (Bcp.Netstate.Ids.mem ids b)

let test_ids_errors () =
  let ids = Bcp.Netstate.Ids.create ~kind:"bid" () in
  ignore (Bcp.Netstate.Ids.fresh ids);
  let expect_invalid ~id f =
    match f () with
    | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%S names the space and id %s" msg id)
        true
        (contains ~sub:"bid" msg && contains ~sub:id msg)
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid ~id:"7" (fun () -> Bcp.Netstate.Ids.check ids 7);
  expect_invalid ~id:"-1" (fun () -> Bcp.Netstate.Ids.check ids (-1));
  expect_invalid ~id:"3" (fun () -> Bcp.Netstate.Ids.release ids 3)

(* ---------------- scenario-prefix equivalence ---------------- *)

type op =
  | Establish of int (* pair index into the shuffled workload *)
  | Add_backup of int (* grow a live connection by one backup *)
  | Remove of int (* index into the live list *)
  | Drain of int (* remove a block of connections *)

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 10 60)
      (frequency
         [
           (6, map (fun i -> Establish i) (int_bound 1000));
           (2, map (fun i -> Add_backup i) (int_bound 1000));
           (2, map (fun i -> Remove i) (int_bound 1000));
           (1, map (fun n -> Drain n) (int_range 1 5));
         ]))

let arb_ops =
  QCheck.make
    ~print:(fun l -> Printf.sprintf "<%d ops>" (List.length l))
    gen_ops

(* Deterministic interpreter; the returned transcript captures every
   admission verdict plus the final load/spare, so equal transcripts mean
   the runs took identical decisions.  [speculative] routes establishment
   through plan/try_commit (the replay is exercised on every request:
   with no concurrent mutator a plan is always valid). *)
let run_scenario ~self_check ~speculative ops =
  let topo = Net.Builders.torus ~rows:4 ~cols:4 ~capacity:50.0 in
  let ns = Bcp.Netstate.create ~lambda:1e-4 topo () in
  Bcp.Netstate.set_self_check ns self_check;
  let rng = Sim.Prng.create 42 in
  let pairs =
    Array.of_list
      (Workload.Generator.shuffled rng
         (Workload.Generator.all_pairs ~backups:1 ~mux_degree:3 topo))
  in
  let next = ref 0 in
  let live = ref [] in
  let t = Buffer.create 256 in
  let note fmt = Printf.ksprintf (Buffer.add_string t) fmt in
  List.iter
    (fun op ->
      match op with
      | Establish i ->
        let r = pairs.(i mod Array.length pairs) in
        let req =
          {
            Bcp.Establish.src = r.Workload.Generator.src;
            dst = r.dst;
            traffic = bw1;
            qos = r.qos;
            backups = 1 + (i mod 2);
            mux_degree = 1 + (i mod 4);
          }
        in
        let conn_id = !next in
        incr next;
        let outcome =
          if speculative then
            let p = Bcp.Establish.plan ns ~conn_id req in
            match Bcp.Establish.try_commit ns p with
            | Some r -> r
            | None -> Bcp.Establish.establish ns ~conn_id req
          else Bcp.Establish.establish ns ~conn_id req
        in
        (match outcome with
        | Ok conn ->
          live := !live @ [ conn ];
          note "E%d+;" conn_id
        | Error _ -> note "E%d-;" conn_id)
      | Add_backup i -> (
        match !live with
        | [] -> ()
        | l -> (
          let conn = List.nth l (i mod List.length l) in
          match
            Bcp.Establish.add_backup ns conn ~mux_degree:(1 + (i mod 4))
          with
          | Ok b -> note "A%d.%d;" conn.Bcp.Dconn.id b.Bcp.Dconn.serial
          | Error _ -> note "A%d-;" conn.Bcp.Dconn.id))
      | Remove i -> (
        match !live with
        | [] -> ()
        | l ->
          let conn = List.nth l (i mod List.length l) in
          live := List.filter (fun c -> c != conn) !live;
          Bcp.Netstate.remove_dconn ns conn.Bcp.Dconn.id;
          note "R%d;" conn.Bcp.Dconn.id)
      | Drain n ->
        let rec drop k =
          if k > 0 then
            match !live with
            | [] -> ()
            | conn :: rest ->
              live := rest;
              Bcp.Netstate.remove_dconn ns conn.Bcp.Dconn.id;
              note "D%d;" conn.Bcp.Dconn.id;
              drop (k - 1)
        in
        drop n)
    ops;
  note "load=%.9f;spare=%.9f"
    (Bcp.Netstate.network_load ns)
    (Bcp.Netstate.spare_fraction ns);
  Buffer.contents t

let prop_flat_equals_reference =
  QCheck.Test.make ~count:40
    ~name:"flat tables = map reference on random prefixes" arb_ops (fun ops ->
      let checked = run_scenario ~self_check:true ~speculative:false ops in
      let plain = run_scenario ~self_check:false ~speculative:false ops in
      String.equal checked plain)

let prop_speculative_equals_serial =
  QCheck.Test.make ~count:40 ~name:"plan/try_commit = serial establish"
    arb_ops (fun ops ->
      let serial = run_scenario ~self_check:false ~speculative:false ops in
      let spec = run_scenario ~self_check:false ~speculative:true ops in
      String.equal serial spec)

let () =
  Alcotest.run "flatstate"
    [
      ( "ids",
        [
          Alcotest.test_case "fresh is dense ascending" `Quick
            test_ids_stability;
          Alcotest.test_case "release recycles LIFO" `Quick test_ids_recycling;
          Alcotest.test_case "errors name the space and id" `Quick
            test_ids_errors;
        ] );
      ( "equivalence",
        List.map QCheck_alcotest.to_alcotest
          [ prop_flat_equals_reference; prop_speculative_equals_serial ] );
    ]
