(* Tests for the control-plane fault-injection layer: the Failures.Impair
   model, the impaired RCC transport (loss/dup/jitter on data AND acks,
   bounded dedup state), the heartbeat failure detector, parity of the
   zero-impairment path with the legacy oracle pipeline, and the chaos
   evaluation harness. *)

let bw1 = Rtchan.Traffic.of_bandwidth 1.0
let lambda = 1e-4

let report ch =
  Rcc.Control.Failure_report { channel = ch; component = Net.Component.Link 0 }

(* ---------- Impair model ---------- *)

let test_impair_perfect_is_transparent () =
  let imp = Failures.Impair.create ~seed:1 () in
  for i = 0 to 9 do
    Alcotest.(check (list (float 0.0)))
      "one on-time copy" [ 0.0 ]
      (Failures.Impair.decide imp ~link:i ~dir:`Data ~bytes:16
         ~now:(float_of_int i))
  done;
  Alcotest.(check int) "no drops" 0 (Failures.Impair.drops imp)

let test_impair_loss_and_gray () =
  let imp =
    Failures.Impair.create ~seed:2
      ~default:(Failures.Impair.make ~loss:1.0 ()) ()
  in
  Failures.Impair.set_link imp ~link:7 (Failures.Impair.make ~gray:true ());
  Alcotest.(check (list (float 0.0))) "total loss drops" []
    (Failures.Impair.decide imp ~link:0 ~dir:`Data ~bytes:16 ~now:0.0);
  Alcotest.(check (list (float 0.0))) "gray drops" []
    (Failures.Impair.decide imp ~link:7 ~dir:`Ack ~bytes:8 ~now:0.0);
  Alcotest.(check int) "both counted" 2 (Failures.Impair.drops imp)

let test_impair_flap_schedule () =
  let flap = Failures.Impair.flapping ~up:0.01 ~down:0.02 () in
  let imp =
    Failures.Impair.create ~seed:3 ~default:(Failures.Impair.make ~flap ()) ()
  in
  let decide now =
    Failures.Impair.decide imp ~link:0 ~dir:`Data ~bytes:16 ~now
  in
  Alcotest.(check (list (float 0.0))) "up window passes" [ 0.0 ] (decide 0.005);
  Alcotest.(check (list (float 0.0))) "down window drops" [] (decide 0.02);
  Alcotest.(check (list (float 0.0))) "next cycle up again" [ 0.0 ] (decide 0.031)

let test_impair_dup () =
  let imp =
    Failures.Impair.create ~seed:4
      ~default:(Failures.Impair.make ~dup:1.0 ~jitter:1e-4 ()) ()
  in
  let copies =
    Failures.Impair.decide imp ~link:0 ~dir:`Data ~bytes:16 ~now:0.0
  in
  Alcotest.(check int) "two copies" 2 (List.length copies);
  List.iter
    (fun d ->
      Alcotest.(check bool) "jitter within bound" true (d >= 0.0 && d <= 1e-4))
    copies

let test_impair_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "loss > 1" true
    (bad (fun () -> Failures.Impair.make ~loss:1.5 ()));
  Alcotest.(check bool) "negative jitter" true
    (bad (fun () -> Failures.Impair.make ~jitter:(-1.0) ()));
  Alcotest.(check bool) "zero flap" true
    (bad (fun () ->
         Failures.Impair.make
           ~flap:(Failures.Impair.flapping ~up:0.0 ~down:1.0 ()) ()))

(* ---------- impaired transport ---------- *)

let make_transport ?impair ?(params = Rcc.Transport.default_params) () =
  let engine = Sim.Engine.create () in
  let received = ref [] in
  let tr =
    Rcc.Transport.create ?impair engine ~params ~link:0 ~deliver:(fun c ->
        received := c :: !received)
  in
  (engine, tr, received)

let count_deliveries received ch =
  List.length
    (List.filter (fun c -> Rcc.Control.channel_of c = ch) !received)

let test_transport_exactly_once_under_loss () =
  (* 30% loss on data and acks; enough retransmission budget that every
     distinct control message still arrives exactly once. *)
  let imp =
    Failures.Impair.create ~seed:5
      ~default:(Failures.Impair.make ~loss:0.3 ~dup:0.1 ~jitter:2e-4 ()) ()
  in
  let params =
    { Rcc.Transport.default_params with Rcc.Transport.s_max = 16; max_retransmits = 25 }
  in
  let engine, tr, received =
    make_transport
      ~impair:(fun ~dir ~bytes ~now ->
        Failures.Impair.decide imp ~link:0 ~dir ~bytes ~now)
      ~params ()
  in
  let n = 40 in
  for ch = 0 to n - 1 do
    Rcc.Transport.send tr (report ch)
  done;
  Sim.Engine.run engine;
  for ch = 0 to n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "ch %d exactly once" ch)
      1
      (count_deliveries received ch)
  done;
  Alcotest.(check int) "nothing abandoned" 0 (Rcc.Transport.stats_dropped tr);
  Alcotest.(check bool) "loss forced retransmissions" true
    (Rcc.Transport.stats_sent tr > n)

let test_transport_total_loss_gives_up () =
  let params =
    { Rcc.Transport.default_params with Rcc.Transport.max_retransmits = 3 }
  in
  let engine, tr, received =
    make_transport ~impair:(fun ~dir:_ ~bytes:_ ~now:_ -> []) ~params ()
  in
  Rcc.Transport.send tr (report 1);
  Sim.Engine.run engine;
  Alcotest.(check int) "never delivered" 0 (List.length !received);
  Alcotest.(check int) "exactly max_retransmits attempts" 3
    (Rcc.Transport.stats_sent tr);
  Alcotest.(check int) "dropped once" 1 (Rcc.Transport.stats_dropped tr);
  Alcotest.(check int) "not in flight" 0 (Rcc.Transport.in_flight tr)

let test_transport_ack_loss_forces_retransmit () =
  (* Acks always lost, data always delivered: the receiver-side dedup must
     suppress every retransmitted copy, and the sender eventually gives
     up on the (already delivered) message. *)
  let params =
    { Rcc.Transport.default_params with Rcc.Transport.max_retransmits = 4 }
  in
  let engine, tr, received =
    make_transport
      ~impair:(fun ~dir ~bytes:_ ~now:_ ->
        match dir with `Ack -> [] | `Data -> [ 0.0 ])
      ~params ()
  in
  Rcc.Transport.send tr (report 1);
  Sim.Engine.run engine;
  Alcotest.(check int) "exactly one delivery" 1 (List.length !received);
  Alcotest.(check int) "retransmitted to exhaustion" 4
    (Rcc.Transport.stats_sent tr);
  Alcotest.(check int) "sender gave up" 1 (Rcc.Transport.stats_dropped tr)

let test_transport_dup_storm_single_delivery () =
  let imp =
    Failures.Impair.create ~seed:6
      ~default:(Failures.Impair.make ~dup:1.0 ~jitter:1e-4 ()) ()
  in
  let params = { Rcc.Transport.default_params with Rcc.Transport.s_max = 16 } in
  let engine, tr, received =
    make_transport
      ~impair:(fun ~dir ~bytes ~now ->
        Failures.Impair.decide imp ~link:0 ~dir ~bytes ~now)
      ~params ()
  in
  for ch = 0 to 9 do
    Rcc.Transport.send tr (report ch)
  done;
  Sim.Engine.run engine;
  for ch = 0 to 9 do
    Alcotest.(check int) "dedup under duplication" 1 (count_deliveries received ch)
  done

let test_transport_seen_window_bounded () =
  let params =
    { Rcc.Transport.default_params with Rcc.Transport.s_max = 16; seen_window = 8 }
  in
  let engine, tr, received = make_transport ~params () in
  for ch = 0 to 49 do
    Rcc.Transport.send tr (report ch)
  done;
  Sim.Engine.run engine;
  Alcotest.(check int) "all delivered" 50 (List.length !received);
  Alcotest.(check bool) "seen bounded by window" true
    (Rcc.Transport.seen_size tr <= 8)

let test_transport_seen_pruned_on_repair () =
  let engine, tr, received = make_transport () in
  Rcc.Transport.send tr (report 1);
  Rcc.Transport.send tr (report 2);
  Sim.Engine.run engine;
  Alcotest.(check bool) "dedup state accumulated" true
    (Rcc.Transport.seen_size tr > 0);
  ignore received;
  Rcc.Transport.set_alive tr false;
  Rcc.Transport.set_alive tr true;
  (* Everything was acked and nothing is airborne: the repair prune can
     safely forget all of it. *)
  Alcotest.(check int) "seen cleared on repair" 0 (Rcc.Transport.seen_size tr)

(* ---------- simnet helpers ---------- *)

let request ?(backups = 1) ?(mux_degree = 1) src dst =
  {
    Bcp.Establish.src;
    dst;
    traffic = bw1;
    qos = Rtchan.Qos.default;
    backups;
    mux_degree;
  }

let establish_exn ns id req =
  match Bcp.Establish.establish ns ~conn_id:id req with
  | Ok c -> c
  | Error e -> Alcotest.failf "establish %d: %a" id Bcp.Establish.pp_reject e

let torus_ns ?(capacity = 10.0) () =
  Bcp.Netstate.create ~lambda (Net.Builders.torus ~rows:4 ~cols:4 ~capacity) ()

let primary_link_id c =
  List.hd (Net.Path.links c.Bcp.Dconn.primary.Rtchan.Channel.path)

let find_record sim conn =
  match
    List.find_opt (fun r -> r.Bcp.Simnet.conn = conn) (Bcp.Simnet.records sim)
  with
  | Some r -> r
  | None -> Alcotest.failf "no record for conn %d" conn

(* ---------- parity: zero impairment == legacy pipeline ---------- *)

let run_parity_scenario ~impaired () =
  let ns = torus_ns () in
  let c0 = establish_exn ns 0 (request 0 5) in
  let _c1 = establish_exn ns 1 (request 12 3 ~backups:2) in
  let sim = Bcp.Simnet.create ns in
  if impaired then
    Bcp.Simnet.set_impairment sim (Failures.Impair.create ~seed:99 ());
  Bcp.Simnet.fail_link sim ~at:0.01 (primary_link_id c0);
  Bcp.Simnet.fail_node sim ~at:0.02 10;
  Bcp.Simnet.run ~until:0.3 sim;
  Bcp.Simnet.finalize sim;
  sim

let test_zero_impairment_parity () =
  let a = run_parity_scenario ~impaired:false () in
  let b = run_parity_scenario ~impaired:true () in
  let summary sim r =
    ( r.Bcp.Simnet.conn,
      r.Bcp.Simnet.failure_time,
      r.Bcp.Simnet.excluded,
      r.Bcp.Simnet.src_informed,
      r.Bcp.Simnet.dst_informed,
      r.Bcp.Simnet.activations,
      r.Bcp.Simnet.resumed_at,
      r.Bcp.Simnet.recovered_serial,
      Bcp.Simnet.rcc_messages_sent sim )
  in
  Alcotest.(check int) "same record count"
    (List.length (Bcp.Simnet.records a))
    (List.length (Bcp.Simnet.records b));
  List.iter2
    (fun ra rb ->
      if summary a ra <> summary b rb then
        Alcotest.failf "record for conn %d diverged" ra.Bcp.Simnet.conn)
    (Bcp.Simnet.records a) (Bcp.Simnet.records b);
  Alcotest.(check int) "identical RCC message count"
    (Bcp.Simnet.rcc_messages_sent a)
    (Bcp.Simnet.rcc_messages_sent b);
  Alcotest.(check int) "identical deliveries"
    (Bcp.Simnet.control_messages_delivered a)
    (Bcp.Simnet.control_messages_delivered b);
  (* Byte-identical traces: same events, same times, same order. *)
  let dump sim =
    String.concat "\n"
      (List.map
         (fun e ->
           Printf.sprintf "%.9f %s %s" e.Sim.Trace.time e.Sim.Trace.tag
             e.Sim.Trace.detail)
         (Sim.Trace.entries (Bcp.Simnet.trace sim)))
  in
  Alcotest.(check string) "byte-identical trace" (dump a) (dump b)

(* ---------- recovery under 20% control-message loss ---------- *)

let test_recovery_under_loss () =
  let ns = torus_ns () in
  let rng = Sim.Prng.create 17 in
  let reqs =
    List.filteri (fun i _ -> i < 40)
      (Workload.Generator.shuffled rng (Workload.Generator.all_pairs (Bcp.Netstate.topology ns)))
  in
  let conns =
    List.mapi
      (fun i (r : Workload.Generator.request) ->
        establish_exn ns i
          (request r.Workload.Generator.src r.Workload.Generator.dst))
      reqs
  in
  let config =
    {
      Bcp.Protocol.default_config with
      Bcp.Protocol.rcc =
        { Rcc.Transport.default_params with Rcc.Transport.max_retransmits = 25 };
    }
  in
  let sim = Bcp.Simnet.create ~config ns in
  Bcp.Simnet.set_impairment sim
    (Failures.Impair.create ~seed:23
       ~default:(Failures.Impair.make ~loss:0.2 ~dup:0.1 ~jitter:2e-4 ()) ());
  Bcp.Simnet.fail_link sim ~at:0.01 (primary_link_id (List.hd conns));
  Bcp.Simnet.run ~until:0.4 sim;
  Bcp.Simnet.finalize sim;
  let records = Bcp.Simnet.records sim in
  Alcotest.(check bool) "some connections affected" true (records <> []);
  List.iter
    (fun r ->
      if not r.Bcp.Simnet.excluded then begin
        Alcotest.(check bool)
          (Printf.sprintf "conn %d resumed despite loss" r.Bcp.Simnet.conn)
          true
          (r.Bcp.Simnet.resumed_at <> None);
        Alcotest.(check bool)
          (Printf.sprintf "conn %d validated" r.Bcp.Simnet.conn)
          true
          (r.Bcp.Simnet.recovered_serial <> None)
      end)
    records

(* ---------- heartbeat failure detection ---------- *)

let hb_config =
  {
    Bcp.Protocol.default_config with
    Bcp.Protocol.detector = Bcp.Protocol.Heartbeat Bcp.Detector.default_params;
  }

let test_detector_state_machine () =
  let p = { Bcp.Detector.period = 0.01; suspect_misses = 2; confirm_misses = 4 } in
  let d = Bcp.Detector.create p ~now:0.0 in
  Alcotest.(check bool) "healthy at start" true
    (Bcp.Detector.state d = Bcp.Detector.Healthy);
  Alcotest.(check bool) "fine after one miss" true
    (Bcp.Detector.check d ~now:0.015 = `Fine);
  Alcotest.(check bool) "suspected" true
    (Bcp.Detector.check d ~now:0.025 = `Suspected);
  Alcotest.(check bool) "beat clears suspicion" true
    (Bcp.Detector.beat d ~now:0.03 = `Fine);
  Alcotest.(check bool) "healthy again" true
    (Bcp.Detector.state d = Bcp.Detector.Healthy);
  Alcotest.(check bool) "confirmed after threshold" true
    (Bcp.Detector.check d ~now:0.08 = `Confirmed);
  Alcotest.(check bool) "confirm fires once" true
    (Bcp.Detector.check d ~now:0.09 = `Fine);
  Alcotest.(check bool) "beat recovers from confirmed" true
    (Bcp.Detector.beat d ~now:0.1 = `Recovered)

let test_heartbeat_detects_link_failure () =
  let ns = torus_ns () in
  let c = establish_exn ns 0 (request 0 5) in
  let sim = Bcp.Simnet.create ~config:hb_config ns in
  let l = primary_link_id c in
  Bcp.Simnet.fail_link sim ~at:0.05 l;
  Bcp.Simnet.run ~until:0.2 sim;
  Bcp.Simnet.finalize sim;
  let r = find_record sim 0 in
  Alcotest.(check bool) "confirmed by heartbeats" true
    (Bcp.Simnet.heartbeat_confirms sim >= 1);
  Alcotest.(check bool) "failed link monitor confirmed" true
    (Bcp.Simnet.detector_state sim l = Some Bcp.Detector.Confirmed);
  Alcotest.(check bool) "resumed without any oracle" true
    (r.Bcp.Simnet.resumed_at <> None);
  Alcotest.(check (option int)) "recovered on backup" (Some 1)
    r.Bcp.Simnet.recovered_serial;
  (* Detection needed at least the configured miss window. *)
  let resumed = Option.get r.Bcp.Simnet.resumed_at in
  let hb = Bcp.Detector.default_params in
  Alcotest.(check bool) "detection respects miss threshold" true
    (resumed -. 0.05
    >= float_of_int hb.Bcp.Detector.suspect_misses *. hb.Bcp.Detector.period)

let test_heartbeat_false_positive_recovery () =
  (* A flapping gray link: long silent outages, no real failure.  The
     detector must confirm during an outage (false positive) and observe
     the heartbeats resuming afterwards. *)
  let ns = torus_ns () in
  let c = establish_exn ns 0 (request 0 5) in
  let sim = Bcp.Simnet.create ~config:hb_config ns in
  let l = primary_link_id c in
  let imp = Failures.Impair.create ~seed:31 () in
  Failures.Impair.set_link imp ~link:l
    (Failures.Impair.make
       ~flap:(Failures.Impair.flapping ~up:0.05 ~down:0.05 ~phase:0.05 ())
       ());
  Bcp.Simnet.set_impairment sim imp;
  Bcp.Simnet.run ~until:0.3 sim;
  Bcp.Simnet.finalize sim;
  Alcotest.(check bool) "outage confirmed" true
    (Bcp.Simnet.heartbeat_confirms sim >= 1);
  Alcotest.(check bool) "false positive noticed on resume" true
    (Bcp.Simnet.heartbeat_recoveries sim >= 1);
  (* The link was never actually down. *)
  Alcotest.(check bool) "link alive throughout" true (Bcp.Simnet.link_is_alive sim l)

let test_heartbeat_node_failure () =
  let ns = torus_ns () in
  (* A transit connection: 0 -> ... -> 2 passing through a middle node. *)
  let c0 = establish_exn ns 0 (request 0 2) in
  let mid =
    List.nth
      (Net.Path.nodes (Bcp.Netstate.topology ns)
         c0.Bcp.Dconn.primary.Rtchan.Channel.path)
      1
  in
  let sim = Bcp.Simnet.create ~config:hb_config ns in
  Bcp.Simnet.fail_node sim ~at:0.05 mid;
  Bcp.Simnet.run ~until:0.25 sim;
  Bcp.Simnet.finalize sim;
  let r = find_record sim 0 in
  Alcotest.(check bool) "recovered from node death" true
    (r.Bcp.Simnet.resumed_at <> None && r.Bcp.Simnet.recovered_serial <> None)

(* ---------- chaos harness smoke ---------- *)

let test_chaos_levels_monotone_overhead () =
  let ns = torus_ns () in
  let rng = Sim.Prng.create 41 in
  let reqs =
    List.filteri (fun i _ -> i < 30)
      (Workload.Generator.shuffled rng
         (Workload.Generator.all_pairs (Bcp.Netstate.topology ns)))
  in
  List.iteri
    (fun i (r : Workload.Generator.request) ->
      ignore
        (Bcp.Establish.establish ns ~conn_id:i
           (request r.Workload.Generator.src r.Workload.Generator.dst)))
    reqs;
  let levels = [ Eval.Chaos.level 0.0; Eval.Chaos.level 0.3 ~dup:0.1 ] in
  match Eval.Chaos.run ~seed:5 ~scenario_count:3 ~levels ns with
  | [ clean; lossy ] ->
    Alcotest.(check bool) "clean recovers fully" true (clean.Eval.Chaos.r_fast >= 99.9);
    Alcotest.(check int) "same affected set" clean.Eval.Chaos.affected
      lossy.Eval.Chaos.affected;
    Alcotest.(check bool) "loss inflates RCC traffic" true
      (lossy.Eval.Chaos.rcc_sent > clean.Eval.Chaos.rcc_sent);
    ignore (Eval.Chaos.report [ clean; lossy ])
  | _ -> Alcotest.fail "expected two outcomes"

let () =
  Alcotest.run "impair"
    [
      ( "model",
        [
          Alcotest.test_case "perfect transparent" `Quick
            test_impair_perfect_is_transparent;
          Alcotest.test_case "loss + gray" `Quick test_impair_loss_and_gray;
          Alcotest.test_case "flap schedule" `Quick test_impair_flap_schedule;
          Alcotest.test_case "duplication" `Quick test_impair_dup;
          Alcotest.test_case "validation" `Quick test_impair_validation;
        ] );
      ( "transport",
        [
          Alcotest.test_case "exactly-once under 30% loss" `Quick
            test_transport_exactly_once_under_loss;
          Alcotest.test_case "total loss gives up" `Quick
            test_transport_total_loss_gives_up;
          Alcotest.test_case "ack loss forces retransmit" `Quick
            test_transport_ack_loss_forces_retransmit;
          Alcotest.test_case "dup storm single delivery" `Quick
            test_transport_dup_storm_single_delivery;
          Alcotest.test_case "seen window bounded" `Quick
            test_transport_seen_window_bounded;
          Alcotest.test_case "seen pruned on repair" `Quick
            test_transport_seen_pruned_on_repair;
        ] );
      ( "parity",
        [ Alcotest.test_case "zero impairment" `Quick test_zero_impairment_parity ] );
      ( "recovery",
        [ Alcotest.test_case "20% loss" `Quick test_recovery_under_loss ] );
      ( "heartbeat",
        [
          Alcotest.test_case "detector state machine" `Quick
            test_detector_state_machine;
          Alcotest.test_case "detects link failure" `Quick
            test_heartbeat_detects_link_failure;
          Alcotest.test_case "false positive recovery" `Quick
            test_heartbeat_false_positive_recovery;
          Alcotest.test_case "node failure" `Quick test_heartbeat_node_failure;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "levels + overhead" `Quick
            test_chaos_levels_monotone_overhead;
        ] );
    ]
