(* Tests for the simulation substrate: PRNG, heap, engine, stats, trace. *)

let check_float = Alcotest.(check (float 1e-9))

(* ---------- Prng ---------- *)

let test_prng_deterministic () =
  let a = Sim.Prng.create 123 and b = Sim.Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Prng.bits64 a) (Sim.Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Sim.Prng.create 1 and b = Sim.Prng.create 2 in
  Alcotest.(check bool) "different seeds differ" false
    (Sim.Prng.bits64 a = Sim.Prng.bits64 b)

let test_prng_int_range () =
  let rng = Sim.Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = Sim.Prng.int rng 17 in
    if not (v >= 0 && v < 17) then Alcotest.failf "out of range: %d" v
  done

let test_prng_int_rejects_zero () =
  let rng = Sim.Prng.create 7 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Sim.Prng.int rng 0))

let test_prng_float_range () =
  let rng = Sim.Prng.create 9 in
  for _ = 1 to 10_000 do
    let v = Sim.Prng.float rng 3.5 in
    if not (v >= 0.0 && v < 3.5) then Alcotest.failf "out of range: %f" v
  done

let test_prng_uniformity () =
  (* Coarse balance check: 10 buckets, 10k draws. *)
  let rng = Sim.Prng.create 11 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Sim.Prng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c ->
      if not (c > 700 && c < 1300) then Alcotest.failf "unbalanced bucket: %d" c)
    buckets

let test_prng_exponential_mean () =
  let rng = Sim.Prng.create 13 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Sim.Prng.exponential rng ~mean:5.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 5" true (mean > 4.8 && mean < 5.2)

let test_prng_shuffle_permutation () =
  let rng = Sim.Prng.create 17 in
  let a = Array.init 50 (fun i -> i) in
  Sim.Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 50 (fun i -> i)) sorted

let test_prng_split_independence () =
  let parent = Sim.Prng.create 23 in
  let child = Sim.Prng.split parent in
  Alcotest.(check bool) "streams differ" false
    (Sim.Prng.bits64 parent = Sim.Prng.bits64 child)

let test_prng_sample_without_replacement () =
  let rng = Sim.Prng.create 29 in
  let s = Sim.Prng.sample_without_replacement rng 10 20 in
  Alcotest.(check int) "ten values" 10 (List.length s);
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq Int.compare s));
  List.iter
    (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 20))
    s

(* ---------- Heap ---------- *)

let test_heap_sorts () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  List.iter (Sim.Heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  Alcotest.(check (list int)) "sorted drain" [ 1; 2; 3; 5; 7; 8; 9 ]
    (Sim.Heap.to_sorted_list h);
  Alcotest.(check int) "length intact" 7 (Sim.Heap.length h)

let test_heap_pop_order () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  List.iter (Sim.Heap.push h) [ 4; 4; 1; 4 ];
  Alcotest.(check (option int)) "min first" (Some 1) (Sim.Heap.pop h);
  Alcotest.(check (option int)) "dup" (Some 4) (Sim.Heap.pop h);
  Alcotest.(check (option int)) "dup" (Some 4) (Sim.Heap.pop h);
  Alcotest.(check (option int)) "dup" (Some 4) (Sim.Heap.pop h);
  Alcotest.(check (option int)) "empty" None (Sim.Heap.pop h)

let test_heap_empty () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "is_empty" true (Sim.Heap.is_empty h);
  Alcotest.(check (option int)) "peek none" None (Sim.Heap.peek h);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Sim.Heap.pop_exn h))

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains any list in sorted order" ~count:200
    QCheck.(list int)
    (fun l ->
      let h = Sim.Heap.create ~cmp:Int.compare in
      List.iter (Sim.Heap.push h) l;
      Sim.Heap.to_sorted_list h = List.sort Int.compare l)

(* ---------- Engine ---------- *)

let test_engine_time_order () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore (Sim.Engine.schedule e ~at:3.0 (fun () -> log := 3 :: !log));
  ignore (Sim.Engine.schedule e ~at:1.0 (fun () -> log := 1 :: !log));
  ignore (Sim.Engine.schedule e ~at:2.0 (fun () -> log := 2 :: !log));
  Sim.Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  check_float "clock at last event" 3.0 (Sim.Engine.now e)

let test_engine_fifo_ties () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  List.iter
    (fun i -> ignore (Sim.Engine.schedule e ~at:1.0 (fun () -> log := i :: !log)))
    [ 1; 2; 3; 4 ];
  Sim.Engine.run e;
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3; 4 ]
    (List.rev !log)

let test_engine_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let h = Sim.Engine.schedule e ~at:1.0 (fun () -> fired := true) in
  Sim.Engine.cancel e h;
  Alcotest.(check int) "pending zero" 0 (Sim.Engine.pending e);
  Sim.Engine.run e;
  Alcotest.(check bool) "cancelled never fires" false !fired

let test_engine_cancel_idempotent () =
  let e = Sim.Engine.create () in
  let h = Sim.Engine.schedule e ~at:1.0 (fun () -> ()) in
  Sim.Engine.cancel e h;
  Sim.Engine.cancel e h;
  Alcotest.(check int) "pending stays 0" 0 (Sim.Engine.pending e)

let test_engine_schedule_in_past_rejected () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule e ~at:5.0 (fun () -> ()));
  Sim.Engine.run e;
  Alcotest.(check bool) "raises" true
    (try
       ignore (Sim.Engine.schedule e ~at:1.0 (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_engine_nested_scheduling () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore
    (Sim.Engine.schedule e ~at:1.0 (fun () ->
         log := "a" :: !log;
         ignore
           (Sim.Engine.schedule_after e ~delay:0.5 (fun () ->
                log := "b" :: !log))));
  Sim.Engine.run e;
  Alcotest.(check (list string)) "nested runs" [ "a"; "b" ] (List.rev !log);
  check_float "clock" 1.5 (Sim.Engine.now e)

let test_engine_run_until () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.Engine.schedule e ~at:(float_of_int i) (fun () -> incr count))
  done;
  Sim.Engine.run ~until:5.5 e;
  Alcotest.(check int) "five fired" 5 !count;
  check_float "clock advanced to horizon" 5.5 (Sim.Engine.now e);
  Sim.Engine.run e;
  Alcotest.(check int) "rest fired" 10 !count

(* ---------- Stats ---------- *)

let test_running_stats () =
  let r = Sim.Stats.Running.create () in
  List.iter (Sim.Stats.Running.add r) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_float "mean" 5.0 (Sim.Stats.Running.mean r);
  check_float "variance" (32.0 /. 7.0) (Sim.Stats.Running.variance r);
  check_float "min" 2.0 (Sim.Stats.Running.min r);
  check_float "max" 9.0 (Sim.Stats.Running.max r);
  Alcotest.(check int) "count" 8 (Sim.Stats.Running.count r)

let test_running_merge () =
  let a = Sim.Stats.Running.create () and b = Sim.Stats.Running.create () in
  let all = Sim.Stats.Running.create () in
  List.iter
    (fun v ->
      Sim.Stats.Running.add all v;
      if v < 5.0 then Sim.Stats.Running.add a v else Sim.Stats.Running.add b v)
    [ 1.0; 2.0; 3.0; 6.0; 7.0; 8.0; 9.0 ];
  let m = Sim.Stats.Running.merge a b in
  check_float "merged mean" (Sim.Stats.Running.mean all) (Sim.Stats.Running.mean m);
  check_float "merged var"
    (Sim.Stats.Running.variance all)
    (Sim.Stats.Running.variance m)

let test_sample_percentiles () =
  let s = Sim.Stats.Sample.create () in
  for i = 1 to 100 do
    Sim.Stats.Sample.add s (float_of_int i)
  done;
  check_float "median" 50.5 (Sim.Stats.Sample.median s);
  check_float "p0" 1.0 (Sim.Stats.Sample.percentile s 0.0);
  check_float "p100" 100.0 (Sim.Stats.Sample.percentile s 100.0);
  check_float "max" 100.0 (Sim.Stats.Sample.max s);
  check_float "min" 1.0 (Sim.Stats.Sample.min s)

let test_histogram () =
  let h = Sim.Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Sim.Stats.Histogram.add h) [ 0.5; 1.5; 1.7; 9.5; -3.0; 42.0 ];
  let counts = Sim.Stats.Histogram.counts h in
  Alcotest.(check int) "bin0 (incl clamp)" 2 counts.(0);
  Alcotest.(check int) "bin1" 2 counts.(1);
  Alcotest.(check int) "bin9 (incl clamp)" 2 counts.(9);
  Alcotest.(check int) "total" 6 (Sim.Stats.Histogram.total h);
  Alcotest.(check int) "edges" 11 (Array.length (Sim.Stats.Histogram.bin_edges h))

let test_sample_single () =
  let s = Sim.Stats.Sample.create () in
  Sim.Stats.Sample.add s 7.5;
  check_float "median" 7.5 (Sim.Stats.Sample.median s);
  check_float "p0" 7.5 (Sim.Stats.Sample.percentile s 0.0);
  check_float "p50" 7.5 (Sim.Stats.Sample.percentile s 50.0);
  check_float "p100" 7.5 (Sim.Stats.Sample.percentile s 100.0)

let test_histogram_clamp_boundaries () =
  let h = Sim.Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  (* Exactly lo -> first bin; exactly hi -> last bin; an interior bin
     edge goes to the bin it opens. *)
  List.iter (Sim.Stats.Histogram.add h) [ 0.0; 10.0; 5.0 ];
  let counts = Sim.Stats.Histogram.counts h in
  Alcotest.(check int) "lo in bin0" 1 counts.(0);
  Alcotest.(check int) "hi in last bin" 1 counts.(9);
  Alcotest.(check int) "edge opens bin5" 1 counts.(5);
  (* Clamped outliers join the edge bins. *)
  List.iter (Sim.Stats.Histogram.add h) [ -1e9; 1e9 ];
  let counts = Sim.Stats.Histogram.counts h in
  Alcotest.(check int) "below lo clamps to bin0" 2 counts.(0);
  Alcotest.(check int) "above hi clamps to last" 2 counts.(9)

let test_ratio () =
  check_float "basic" 50.0 (Sim.Stats.ratio 1 2);
  check_float "zero denominator" 0.0 (Sim.Stats.ratio 5 0)

let prop_welford_matches_naive =
  QCheck.Test.make ~name:"Welford mean matches naive mean" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1000.0) 1000.0))
    (fun l ->
      let r = Sim.Stats.Running.create () in
      List.iter (Sim.Stats.Running.add r) l;
      let naive = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
      Float.abs (Sim.Stats.Running.mean r -. naive)
      < 1e-6 *. (1.0 +. Float.abs naive))

(* ---------- Trace ---------- *)

let test_trace_roundtrip () =
  let t = Sim.Trace.create () in
  Sim.Trace.record t ~time:1.0 ~tag:"a" "one";
  Sim.Trace.recordf t ~time:2.0 ~tag:"b" "two %d" 2;
  Alcotest.(check int) "count" 2 (Sim.Trace.count t);
  let entries = Sim.Trace.entries t in
  Alcotest.(check (list string)) "tags" [ "a"; "b" ]
    (List.map (fun e -> e.Sim.Trace.tag) entries);
  Alcotest.(check int) "find_all" 1 (List.length (Sim.Trace.find_all t ~tag:"b"))

let test_trace_ring_overflow () =
  let t = Sim.Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Sim.Trace.record t ~time:(float_of_int i) ~tag:"x" (string_of_int i)
  done;
  let entries = Sim.Trace.entries t in
  Alcotest.(check int) "keeps capacity" 4 (List.length entries);
  Alcotest.(check string) "oldest dropped" "7" (List.hd entries).Sim.Trace.detail;
  Alcotest.(check int) "total counts all" 10 (Sim.Trace.count t)

let test_trace_tag_index () =
  (* find_all must agree with a linear scan over the live entries (same
     entries, same oldest-first order), including across ring eviction
     and after clear. *)
  let t = Sim.Trace.create ~capacity:8 () in
  let tags = [| "alpha"; "beta"; "gamma" |] in
  for i = 0 to 29 do
    Sim.Trace.record t ~time:(float_of_int i) ~tag:tags.(i mod 3)
      (string_of_int i)
  done;
  Array.iter
    (fun tag ->
      let scanned =
        List.filter (fun e -> e.Sim.Trace.tag = tag) (Sim.Trace.entries t)
      in
      Alcotest.(check (list string))
        ("indexed = scanned for " ^ tag)
        (List.map (fun e -> e.Sim.Trace.detail) scanned)
        (List.map
           (fun e -> e.Sim.Trace.detail)
           (Sim.Trace.find_all t ~tag)))
    tags;
  Alcotest.(check int) "absent tag" 0
    (List.length (Sim.Trace.find_all t ~tag:"delta"));
  Sim.Trace.clear t;
  Alcotest.(check int) "index cleared" 0
    (List.length (Sim.Trace.find_all t ~tag:"alpha"));
  Sim.Trace.record t ~time:0.0 ~tag:"alpha" "fresh";
  Alcotest.(check int) "index live after clear" 1
    (List.length (Sim.Trace.find_all t ~tag:"alpha"))

let test_trace_clear () =
  let t = Sim.Trace.create () in
  Sim.Trace.record t ~time:0.0 ~tag:"x" "y";
  Sim.Trace.clear t;
  Alcotest.(check int) "cleared" 0 (List.length (Sim.Trace.entries t))

let test_trace_create_rejects_nonpositive () =
  Alcotest.check_raises "zero"
    (Invalid_argument "Trace.create: capacity must be positive (got 0)")
    (fun () -> ignore (Sim.Trace.create ~capacity:0 ()));
  Alcotest.check_raises "negative"
    (Invalid_argument "Trace.create: capacity must be positive (got -3)")
    (fun () -> ignore (Sim.Trace.create ~capacity:(-3) ()))

let ev_a = Sim.Event.Fault { component = Sim.Event.Link 3; up = false }

let ev_b =
  Sim.Event.Chan_transition
    { node = 1; channel = 64; from_ = Sim.Event.P; to_ = Sim.Event.U; cause = "detect" }

let test_trace_events_disabled_noop () =
  let t = Sim.Trace.create () in
  Alcotest.(check bool) "off by default" false (Sim.Trace.events_enabled t);
  Sim.Trace.record_event t ~time:1.0 ev_a;
  Alcotest.(check int) "nothing recorded" 0 (Sim.Trace.event_count t);
  Alcotest.(check bool) "empty" true (Sim.Trace.events t = [])

let test_trace_events_capture () =
  let t = Sim.Trace.create () in
  Sim.Trace.set_events t true;
  Sim.Trace.record_event t ~time:1.0 ev_a;
  Sim.Trace.record_event t ~time:2.0 ev_b;
  Alcotest.(check int) "two events" 2 (Sim.Trace.event_count t);
  (match Sim.Trace.events t with
  | [ (t1, e1); (t2, e2) ] ->
    check_float "first time" 1.0 t1;
    check_float "second time" 2.0 t2;
    Alcotest.(check bool) "order kept" true (e1 = ev_a && e2 = ev_b)
  | _ -> Alcotest.fail "expected two events in order");
  Sim.Trace.clear t;
  Alcotest.(check int) "clear drops events" 0 (Sim.Trace.event_count t);
  Alcotest.(check bool) "flag survives clear" true (Sim.Trace.events_enabled t)

let test_trace_events_growth () =
  (* Push past the initial buffer capacity to exercise doubling. *)
  let t = Sim.Trace.create () in
  Sim.Trace.set_events t true;
  for i = 1 to 1000 do
    Sim.Trace.record_event t ~time:(float_of_int i)
      (Sim.Event.Rcc { link = i; op = Sim.Event.Send; seq = i; bytes = 64 })
  done;
  Alcotest.(check int) "all kept" 1000 (Sim.Trace.event_count t);
  match List.rev (Sim.Trace.events t) with
  | (tl, Sim.Event.Rcc { link; _ }) :: _ ->
    check_float "last time" 1000.0 tl;
    Alcotest.(check int) "last link" 1000 link
  | _ -> Alcotest.fail "expected Rcc event last"

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "sim"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "int zero bound" `Quick test_prng_int_rejects_zero;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "shuffle permutation" `Quick
            test_prng_shuffle_permutation;
          Alcotest.test_case "split independence" `Quick
            test_prng_split_independence;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_prng_sample_without_replacement;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "pop order" `Quick test_heap_pop_order;
          Alcotest.test_case "empty behaviour" `Quick test_heap_empty;
        ] );
      qsuite "heap-props" [ prop_heap_sorts ];
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_time_order;
          Alcotest.test_case "FIFO ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "cancel idempotent" `Quick
            test_engine_cancel_idempotent;
          Alcotest.test_case "past rejected" `Quick
            test_engine_schedule_in_past_rejected;
          Alcotest.test_case "nested scheduling" `Quick
            test_engine_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_engine_run_until;
        ] );
      ( "stats",
        [
          Alcotest.test_case "running" `Quick test_running_stats;
          Alcotest.test_case "merge" `Quick test_running_merge;
          Alcotest.test_case "percentiles" `Quick test_sample_percentiles;
          Alcotest.test_case "single sample" `Quick test_sample_single;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram clamp boundaries" `Quick
            test_histogram_clamp_boundaries;
          Alcotest.test_case "ratio" `Quick test_ratio;
        ] );
      qsuite "stats-props" [ prop_welford_matches_naive ];
      ( "trace",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "ring overflow" `Quick test_trace_ring_overflow;
          Alcotest.test_case "tag index" `Quick test_trace_tag_index;
          Alcotest.test_case "clear" `Quick test_trace_clear;
          Alcotest.test_case "create rejects capacity <= 0" `Quick
            test_trace_create_rejects_nonpositive;
          Alcotest.test_case "events disabled no-op" `Quick
            test_trace_events_disabled_noop;
          Alcotest.test_case "events capture" `Quick test_trace_events_capture;
          Alcotest.test_case "events growth" `Quick test_trace_events_growth;
        ] );
    ]
