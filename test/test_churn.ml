(* Tests for the steady-state churn engine: the Workload.Churn lifecycle
   driver and the Eval.Churn offered-load sweep. *)

let torus44 () = Net.Builders.torus ~rows:4 ~cols:4 ~capacity:50.0

let request_of (r : Workload.Generator.request) =
  {
    Bcp.Establish.src = r.Workload.Generator.src;
    dst = r.dst;
    traffic = r.traffic;
    qos = r.qos;
    backups = r.backups;
    mux_degree = r.mux_degree;
  }

(* The empirical arrival rate of a long admit-everything run must match
   the configured Poisson rate λ = offered × nodes / mean_holding. *)
let test_arrival_rate () =
  let topo = torus44 () in
  let params = Workload.Churn.make_params ~mean_holding:50.0 ~offered:4.0 () in
  let d = Workload.Churn.create ~seed:5 topo params in
  let lambda = Workload.Churn.arrival_rate d in
  Alcotest.(check (float 1e-9)) "lambda" (4.0 *. 16.0 /. 50.0) lambda;
  let arrivals = ref 0 in
  for _ = 1 to 20_000 do
    match Workload.Churn.next d with
    | Workload.Churn.Arrival { conn; _ } ->
      incr arrivals;
      Workload.Churn.admit d ~conn
    | Workload.Churn.Departure _ -> ()
  done;
  let empirical = float_of_int !arrivals /. Workload.Churn.now d in
  Alcotest.(check bool)
    (Printf.sprintf "empirical %.3f within 5%% of %.3f" empirical lambda)
    true
    (abs_float (empirical -. lambda) /. lambda < 0.05)

(* In steady state the active population hovers around offered × nodes
   (M/M/∞ would sit exactly there; here blocking can only pull it
   below).  A single end-of-run snapshot is ~√N noisy, so check the
   time average past a burn-in instead. *)
let test_steady_state_population () =
  let topo = torus44 () in
  let params = Workload.Churn.make_params ~mean_holding:20.0 ~offered:3.0 () in
  let d = Workload.Churn.create ~seed:7 topo params in
  let sum = ref 0 and samples = ref 0 in
  for i = 1 to 30_000 do
    (match Workload.Churn.next d with
    | Workload.Churn.Arrival { conn; _ } -> Workload.Churn.admit d ~conn
    | Workload.Churn.Departure _ -> ());
    if i > 5_000 then begin
      sum := !sum + Workload.Churn.active d;
      incr samples
    end
  done;
  let expected = 3.0 *. 16.0 in
  let mean = float_of_int !sum /. float_of_int !samples in
  Alcotest.(check bool)
    (Printf.sprintf "mean active %.1f within 10%% of %.0f" mean expected)
    true
    (abs_float (mean -. expected) /. expected < 0.10)

(* Blocking probability must be monotone in offered load, zero at the
   bottom of the tuned ladder and strictly positive at the top. *)
let test_blocking_monotone () =
  let outcomes =
    Eval.Churn.run ~seed:3 ~events:4000
      ~offered:[ 4.0; 10.0; 24.0 ]
      ~bandwidth:4.0 Eval.Setup.Torus4
  in
  let blocking =
    List.map (fun (o : Eval.Churn.outcome) -> o.Eval.Churn.blocking) outcomes
  in
  (match blocking with
  | [ b1; b2; b3 ] ->
    Alcotest.(check bool) "monotone" true (b1 <= b2 && b2 <= b3);
    Alcotest.(check bool) "top rung blocks" true (b3 > 0.0)
  | _ -> Alcotest.fail "expected three cells");
  List.iter
    (fun (o : Eval.Churn.outcome) ->
      Alcotest.(check int) "full event budget" 4000 o.Eval.Churn.events;
      Alcotest.(check int) "arrivals = admitted + blocked"
        o.Eval.Churn.arrivals
        (o.Eval.Churn.admitted + o.Eval.Churn.blocked))
    outcomes

(* Sweeps must not depend on the domain count: outcomes and the emitted
   JSON are identical between --jobs 1 and --jobs 2. *)
let test_jobs_identity () =
  let run jobs =
    Sim.Pool.set_jobs jobs;
    Eval.Churn.run ~seed:9 ~events:2000
      ~offered:[ 2.0; 4.0 ]
      ~bandwidth:4.0 ~fault_every:30.0 Eval.Setup.Torus4
  in
  let serial = run 1 in
  let parallel = run 2 in
  Sim.Pool.set_jobs 1;
  Alcotest.(check bool) "outcomes identical" true (serial = parallel);
  let render outcomes =
    Eval.Json.to_string
      (Eval.Churn.report_to_json ~seed:9 ~events:2000 ~fault_every:30.0
         ~horizon:0.25 ~detector:`Oracle ~network:Eval.Setup.Torus4 outcomes)
  in
  Alcotest.(check string) "JSON identical" (render serial) (render parallel)

(* Fault episodes interleaved with churn must audit green and recover
   what they disrupt. *)
let test_fault_episodes_green () =
  let outcomes =
    Eval.Churn.run ~seed:13 ~events:3000 ~offered:[ 4.0 ] ~bandwidth:4.0
      ~fault_every:20.0 Eval.Setup.Torus4
  in
  let o = List.hd outcomes in
  Alcotest.(check int) "no violations" 0
    (Eval.Churn.total_violations outcomes);
  Alcotest.(check bool) "episodes ran" true (o.Eval.Churn.episodes > 0);
  Alcotest.(check bool) "connections affected" true
    (o.Eval.Churn.affected > 0);
  Alcotest.(check bool) "recoveries happened" true
    (o.Eval.Churn.recovered > 0)

(* After a full drain every resource the churn admitted must be handed
   back: no dconns, empty mux tables (Π/Ψ), per-link free capacity byte
   for byte where it started. *)
let test_drain_returns_everything () =
  let topo = torus44 () in
  let ns = Bcp.Netstate.create topo () in
  let res = Bcp.Netstate.resources ns in
  let mux = Bcp.Netstate.mux ns in
  let links = Net.Topology.num_links topo in
  let free0 = Array.init links (fun l -> Rtchan.Resource.free res l) in
  let params =
    Workload.Churn.make_params ~mean_holding:20.0 ~bandwidth:4.0 ~mux_degree:3
      ~offered:6.0 ()
  in
  let d = Workload.Churn.create ~seed:11 topo params in
  let admitted = ref 0 in
  for _ = 1 to 3_000 do
    match Workload.Churn.next d with
    | Workload.Churn.Arrival { conn; request; _ } -> (
      match Bcp.Establish.establish ns ~conn_id:conn (request_of request) with
      | Ok _ ->
        incr admitted;
        Workload.Churn.admit d ~conn
      | Error _ -> ())
    | Workload.Churn.Departure { conn; _ } ->
      Bcp.Netstate.remove_dconn ns conn
  done;
  Alcotest.(check bool) "something was admitted" true (!admitted > 0);
  Alcotest.(check bool) "still active before drain" true
    (Workload.Churn.active d > 0);
  let rec wind_down () =
    match Workload.Churn.drain d with
    | Some (Workload.Churn.Departure { conn; _ }) ->
      Bcp.Netstate.remove_dconn ns conn;
      wind_down ()
    | Some (Workload.Churn.Arrival _) ->
      Alcotest.fail "drain must not emit arrivals"
    | None -> ()
  in
  wind_down ();
  Alcotest.(check int) "no active connections" 0 (Workload.Churn.active d);
  Alcotest.(check int) "no dconns" 0 (Bcp.Netstate.dconn_count ns);
  let mux_entries = ref 0 in
  for l = 0 to links - 1 do
    mux_entries := !mux_entries + Bcp.Mux.count_on mux ~link:l
  done;
  Alcotest.(check int) "mux tables empty" 0 !mux_entries;
  for l = 0 to links - 1 do
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "link %d free capacity restored" l)
      free0.(l)
      (Rtchan.Resource.free res l)
  done

(* Bad parameters are rejected eagerly. *)
let test_param_validation () =
  Alcotest.check_raises "offered must be > 0"
    (Invalid_argument "Churn.make_params: offered must be > 0") (fun () ->
      ignore (Workload.Churn.make_params ~offered:0.0 ()));
  Alcotest.check_raises "mean_holding must be > 0"
    (Invalid_argument "Churn.make_params: mean_holding must be > 0") (fun () ->
      ignore (Workload.Churn.make_params ~mean_holding:0.0 ~offered:2.0 ()));
  (match Eval.Churn.run ~offered:[] Eval.Setup.Torus4 with
  | _ -> Alcotest.fail "empty ladder must raise"
  | exception Invalid_argument _ -> ())

(* CLI contract of `bcp_sim churn`: usage errors exit 2, a tripped
   --max-blocking gate exits 1, a healthy seeded run exits 0.  The
   binary is a declared dune dependency of the test. *)
(* Under `dune runtest` the cwd is _build/default/test; under a bare
   `dune exec` it is the workspace root. *)
let bcp_sim =
  let candidates =
    [
      Filename.concat (Filename.concat ".." "bin") "bcp_sim.exe";
      List.fold_left Filename.concat "_build" [ "default"; "bin"; "bcp_sim.exe" ];
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let run_cli args =
  Sys.command
    (Filename.quote bcp_sim ^ " " ^ args ^ " > "
    ^ Filename.quote Filename.null)

let test_cli_exit_codes () =
  if not (Sys.file_exists bcp_sim) then
    Alcotest.fail (Printf.sprintf "missing CLI binary %s" bcp_sim);
  Alcotest.(check int) "healthy run exits 0" 0
    (run_cli
       "churn --seed 7 --network torus4 --events 1000 --offered 2 --jobs 2");
  Alcotest.(check int) "--events 0 exits 2" 2 (run_cli "churn --events 0");
  Alcotest.(check int) "--offered 0 exits 2" 2 (run_cli "churn --offered 0,2");
  Alcotest.(check int) "--jobs 0 exits 2" 2 (run_cli "churn --jobs 0");
  Alcotest.(check int) "--max-blocking 101 exits 2" 2
    (run_cli "churn --max-blocking 101");
  Alcotest.(check int) "tripped blocking gate exits 1" 1
    (run_cli
       "churn --seed 7 --network torus4 --events 2000 --offered 24 \
        --bandwidth 4 --max-blocking 1")

let () =
  Alcotest.run "churn"
    [
      ( "driver",
        [
          Alcotest.test_case "arrival rate" `Quick test_arrival_rate;
          Alcotest.test_case "steady-state population" `Quick
            test_steady_state_population;
          Alcotest.test_case "drain returns everything" `Quick
            test_drain_returns_everything;
          Alcotest.test_case "param validation" `Quick test_param_validation;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "blocking monotone" `Slow test_blocking_monotone;
          Alcotest.test_case "jobs identity" `Slow test_jobs_identity;
          Alcotest.test_case "fault episodes green" `Slow
            test_fault_episodes_green;
        ] );
      ( "cli",
        [ Alcotest.test_case "exit codes" `Slow test_cli_exit_codes ] );
    ]
