(* Tests for the typed telemetry plane: metrics registry, event JSON
   codecs, exporters, and the instrumented recovery sweep. *)

let check_float = Alcotest.(check (float 1e-9))

(* ---------- metrics registry ---------- *)

let test_counter_basics () =
  let m = Sim.Metrics.create () in
  let c = Sim.Metrics.counter m "rcc.messages" ~labels:[ ("op", "send") ] in
  Sim.Metrics.incr c;
  Sim.Metrics.incr ~by:4 c;
  Alcotest.(check int) "count" 5 (Sim.Metrics.count c);
  (* Find-or-create returns the same handle; label order is irrelevant. *)
  let c' = Sim.Metrics.counter m "rcc.messages" ~labels:[ ("op", "send") ] in
  Sim.Metrics.incr c';
  Alcotest.(check int) "shared" 6 (Sim.Metrics.count c)

let test_gauge_and_timer () =
  let m = Sim.Metrics.create () in
  let g = Sim.Metrics.gauge m "load" in
  Sim.Metrics.set g 0.25;
  Sim.Metrics.set g 0.75;
  check_float "last set wins" 0.75 (Sim.Metrics.value g);
  let t = Sim.Metrics.timer m "phase.detect" in
  List.iter (Sim.Metrics.observe t) [ 0.001; 0.002; 0.003 ];
  Alcotest.(check int) "observations" 3 (Sim.Metrics.observations t)

let test_kind_conflict_rejected () =
  let m = Sim.Metrics.create () in
  ignore (Sim.Metrics.counter m "x");
  Alcotest.(check bool) "gauge on counter name raises" true
    (try
       ignore (Sim.Metrics.gauge m "x");
       false
     with Invalid_argument _ -> true)

let test_snapshot_sorted () =
  let m = Sim.Metrics.create () in
  Sim.Metrics.incr (Sim.Metrics.counter m "zeta");
  Sim.Metrics.incr (Sim.Metrics.counter m "alpha" ~labels:[ ("b", "2") ]);
  Sim.Metrics.incr (Sim.Metrics.counter m "alpha" ~labels:[ ("a", "1") ]);
  let names = List.map (fun (n, l, _) -> (n, l)) (Sim.Metrics.snapshot m) in
  Alcotest.(check bool) "sorted by name then labels" true
    (names
    = [ ("alpha", [ ("a", "1") ]); ("alpha", [ ("b", "2") ]); ("zeta", []) ])

let test_merge_matches_sequential () =
  (* Observing everything in one registry must equal splitting the same
     (ordered) observations across two registries and merging them. *)
  let direct = Sim.Metrics.create () in
  let a = Sim.Metrics.create () and b = Sim.Metrics.create () in
  let feed m vals =
    let c = Sim.Metrics.counter m "events" in
    let g = Sim.Metrics.gauge m "last" in
    let t = Sim.Metrics.timer m "delay" in
    List.iter
      (fun v ->
        Sim.Metrics.incr c;
        Sim.Metrics.set g v;
        Sim.Metrics.observe t v)
      vals
  in
  let first = [ 0.001; 0.005; 0.002 ] and second = [ 0.004; 0.003 ] in
  feed direct (first @ second);
  feed a first;
  feed b second;
  let merged = Sim.Metrics.create () in
  Sim.Metrics.merge_into ~into:merged a;
  Sim.Metrics.merge_into ~into:merged b;
  Alcotest.(check bool) "snapshots equal" true
    (Sim.Metrics.snapshot merged = Sim.Metrics.snapshot direct)

(* ---------- event JSON round-trips ---------- *)

let all_events =
  [
    Sim.Event.Chan_transition
      { node = 3; channel = 130; from_ = Sim.Event.P; to_ = Sim.Event.U; cause = "detect" };
    Sim.Event.Rcc { link = 7; op = Sim.Event.Retransmit; seq = 42; bytes = 64 };
    Sim.Event.Detector { node = 1; link = 9; signal = Sim.Event.Suspect };
    Sim.Event.Activation { node = 0; conn = 5; serial = 1; channel = 321 };
    Sim.Event.Rejoin_timer { node = 2; channel = 66; op = Sim.Event.Expired };
    Sim.Event.Reconfig { conn = 8; action = "promoted" };
    Sim.Event.Mux { link = 4; backup = 77; op = Sim.Event.Register; pi = 2; psi = 5 };
    Sim.Event.Fault { component = Sim.Event.Node 6; up = true };
  ]

let test_event_roundtrip () =
  List.iter
    (fun ev ->
      (* Through the printer/parser too, not just the constructors. *)
      let s = Eval.Json.to_string (Eval.Telemetry.event_to_json ev) in
      match Eval.Json.of_string s with
      | Error e -> Alcotest.failf "reparse failed for %s: %s" s e
      | Ok j -> (
        match Eval.Telemetry.event_of_json j with
        | Ok ev' ->
          if ev' <> ev then
            Alcotest.failf "round-trip changed %s" (Sim.Event.to_string ev)
        | Error e ->
          Alcotest.failf "decode failed for %s: %s" (Sim.Event.to_string ev) e))
    all_events

let test_event_decode_rejects_garbage () =
  let bad j =
    match Eval.Telemetry.event_of_json j with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "unknown type" true
    (bad (Eval.Json.Obj [ ("type", Eval.Json.String "nope") ]));
  Alcotest.(check bool) "missing field" true
    (bad (Eval.Json.Obj [ ("type", Eval.Json.String "rcc") ]))

let test_string_codecs_total () =
  let chk to_s of_s vs =
    List.iter
      (fun v ->
        match of_s (to_s v) with
        | Some v' when v' = v -> ()
        | _ -> Alcotest.failf "codec not inverse on %s" (to_s v))
      vs
  in
  chk Sim.Event.chan_state_to_string Sim.Event.chan_state_of_string
    [ Sim.Event.N; Sim.Event.P; Sim.Event.B; Sim.Event.U ];
  chk Sim.Event.rcc_op_to_string Sim.Event.rcc_op_of_string
    [ Sim.Event.Send; Sim.Event.Retransmit; Sim.Event.Deliver; Sim.Event.Ack; Sim.Event.Drop ];
  chk Sim.Event.detector_signal_to_string Sim.Event.detector_signal_of_string
    [ Sim.Event.Suspect; Sim.Event.Confirm; Sim.Event.Clear ];
  chk Sim.Event.timer_op_to_string Sim.Event.timer_op_of_string
    [ Sim.Event.Started; Sim.Event.Cancelled; Sim.Event.Expired ];
  chk Sim.Event.mux_op_to_string Sim.Event.mux_op_of_string
    [ Sim.Event.Register; Sim.Event.Unregister ]

let test_metrics_json_roundtrip () =
  let m = Sim.Metrics.create () in
  Sim.Metrics.incr ~by:7 (Sim.Metrics.counter m "c" ~labels:[ ("k", "v") ]);
  Sim.Metrics.set (Sim.Metrics.gauge m "g") 1.5;
  List.iter (Sim.Metrics.observe (Sim.Metrics.timer m "t")) [ 0.01; 0.02 ];
  let snap = Sim.Metrics.snapshot m in
  let s = Eval.Json.to_string (Eval.Telemetry.metrics_to_json snap) in
  match Eval.Json.of_string s with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok j -> (
    match Eval.Telemetry.metrics_of_json j with
    | Ok snap' ->
      Alcotest.(check bool) "snapshot round-trips" true (snap' = snap)
    | Error e -> Alcotest.failf "decode failed: %s" e)

let test_exporters_shape () =
  let events = List.mapi (fun i ev -> (i, 0.001 *. float_of_int i, ev)) all_events in
  let jsonl = Eval.Telemetry.events_to_jsonl events in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  Alcotest.(check int) "one line per event" (List.length events)
    (List.length lines);
  List.iter
    (fun line ->
      match Eval.Json.of_string line with
      | Ok j ->
        Alcotest.(check bool) "has scenario" true
          (Eval.Json.member "scenario" j <> None)
      | Error e -> Alcotest.failf "bad JSONL line %s: %s" line e)
    lines;
  let chrome = Eval.Json.to_string (Eval.Telemetry.events_to_chrome events) in
  match Eval.Json.of_string chrome with
  | Error e -> Alcotest.failf "chrome trace unparseable: %s" e
  | Ok j ->
    let te =
      match Eval.Json.member "traceEvents" j with
      | Some l -> Eval.Json.to_list l
      | None -> []
    in
    Alcotest.(check int) "traceEvents count" (List.length events)
      (List.length te)

(* ---------- instrumented recovery sweep ---------- *)

let sweep ?(jobs = 1) () =
  Sim.Pool.set_jobs jobs;
  let est = Eval.Setup.build ~seed:42 ~backups:1 ~mux_degree:3 Eval.Setup.Torus4 in
  let out =
    Eval.Recovery_delay.measure_telemetry ~seed:11 ~scenario_count:4
      est.Eval.Setup.ns
  in
  Sim.Pool.set_jobs 1;
  out

let test_recovery_telemetry () =
  let stats, tele = sweep () in
  let ph = tele.Eval.Recovery_delay.phases in
  Alcotest.(check bool) "recovered something" true (stats.Eval.Recovery_delay.samples > 0);
  Alcotest.(check bool) "phase samples collected" true
    (ph.Eval.Recovery_delay.detect.Eval.Recovery_delay.samples > 0
    && ph.Eval.Recovery_delay.switch.Eval.Recovery_delay.samples > 0);
  Alcotest.(check bool) "events recorded" true
    (tele.Eval.Recovery_delay.events <> []);
  Alcotest.(check bool) "metrics recorded" true
    (tele.Eval.Recovery_delay.metrics <> []);
  (* Phases are durations: non-negative, and p50 <= max. *)
  List.iter
    (fun (p : Eval.Recovery_delay.phase_stats) ->
      Alcotest.(check bool) "non-negative" true (p.p50 >= 0.0 && p.max >= 0.0);
      Alcotest.(check bool) "p50 <= max" true (p.p50 <= p.max +. 1e-12))
    [
      ph.Eval.Recovery_delay.detect;
      ph.Eval.Recovery_delay.report;
      ph.Eval.Recovery_delay.activate;
      ph.Eval.Recovery_delay.switch;
    ]

let test_recovery_stats_unchanged_by_telemetry () =
  (* The instrumented sweep must report the same statistics as the plain
     one: telemetry is strictly passive. *)
  let est = Eval.Setup.build ~seed:42 ~backups:1 ~mux_degree:3 Eval.Setup.Torus4 in
  let plain =
    Eval.Recovery_delay.measure ~seed:11 ~scenario_count:4 est.Eval.Setup.ns
  in
  let stats, _ = sweep () in
  Alcotest.(check bool) "stats identical" true (stats = plain)

let test_recovery_telemetry_parallel_identical () =
  let stats_s, tele_s = sweep () in
  let stats_p, tele_p = sweep ~jobs:4 () in
  Alcotest.(check bool) "stats identical" true (stats_s = stats_p);
  Alcotest.(check bool) "metrics identical" true
    (tele_s.Eval.Recovery_delay.metrics = tele_p.Eval.Recovery_delay.metrics);
  Alcotest.(check bool) "events identical" true
    (tele_s.Eval.Recovery_delay.events = tele_p.Eval.Recovery_delay.events);
  Alcotest.(check bool) "phases identical" true
    (tele_s.Eval.Recovery_delay.phases = tele_p.Eval.Recovery_delay.phases)

let test_setup_mux_sink () =
  let regs = ref 0 in
  let sink = function
    | Sim.Event.Mux { op = Sim.Event.Register; pi; psi; _ } ->
      if pi < 0 || psi < 0 then Alcotest.fail "negative set size";
      incr regs
    | _ -> ()
  in
  let est =
    Eval.Setup.build ~seed:42 ~backups:1 ~mux_degree:3 ~mux_sink:sink
      Eval.Setup.Torus4
  in
  Alcotest.(check bool) "established" true (est.Eval.Setup.established > 0);
  Alcotest.(check bool) "saw registrations" true (!regs > 0)

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "gauge and timer" `Quick test_gauge_and_timer;
          Alcotest.test_case "kind conflict" `Quick test_kind_conflict_rejected;
          Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
          Alcotest.test_case "merge = sequential" `Quick
            test_merge_matches_sequential;
        ] );
      ( "codecs",
        [
          Alcotest.test_case "event round-trip" `Quick test_event_roundtrip;
          Alcotest.test_case "decode rejects garbage" `Quick
            test_event_decode_rejects_garbage;
          Alcotest.test_case "string codecs total" `Quick
            test_string_codecs_total;
          Alcotest.test_case "metrics round-trip" `Quick
            test_metrics_json_roundtrip;
          Alcotest.test_case "exporter shapes" `Quick test_exporters_shape;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "phases collected" `Quick test_recovery_telemetry;
          Alcotest.test_case "stats unchanged" `Quick
            test_recovery_stats_unchanged_by_telemetry;
          Alcotest.test_case "parallel identical" `Quick
            test_recovery_telemetry_parallel_identical;
          Alcotest.test_case "setup mux sink" `Quick test_setup_mux_sink;
        ] );
    ]
