(* Benchmark comparison gate.

   Usage: compare BASELINE.json FRESH.json [--tolerance PCT] [--json FILE]

   Diffs a fresh bcp-bench/v1 results file against a committed baseline:

   - Correctness: every table in the baseline must appear in the fresh
     run with identical columns, row labels and cells (the cells are the
     rendered strings of the text tables, so this is the same check as a
     byte-diff of the rendered output).  Any mismatch fails the gate.
   - Timing: when both files carry wall-clock data, a fresh table (or
     the total) slower than baseline by more than the tolerance
     (default 20%) fails the gate.  Baselines committed with
     [--omit-timings] skip this check, keeping the gate independent of
     the machine that produced the baseline.

   [--json FILE] additionally writes the complete drift set as a
   bcp-compare/v1 document: one record per failure with the table, row,
   column, both values and a failure kind, so CI tooling can triage
   drift without scraping FAIL lines.

   Exit codes: 0 ok, 1 drift or regression, 2 usage / IO / parse error. *)

let errors = ref 0
let findings : Eval.Json.t list ref = ref []

(* Structured twin of a FAIL line; [kind] names the check that fired. *)
let note ~kind ?(table = "") ?(row = "") ?(column = "") ~baseline ~fresh () =
  let s v = Eval.Json.String v in
  findings :=
    Eval.Json.Obj
      [
        ("kind", s kind);
        ("table", s table);
        ("row", s row);
        ("column", s column);
        ("baseline", s baseline);
        ("fresh", s fresh);
      ]
    :: !findings

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr errors;
      Printf.printf "FAIL %s\n" msg)
    fmt

let usage () =
  prerr_endline
    "usage: compare BASELINE.json FRESH.json [--tolerance PCT] [--json FILE]\n\
  (--timing-tolerance is accepted as an alias)";
  exit 2

let load path =
  let content =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error msg ->
      Printf.eprintf "compare: cannot read %s: %s\n" path msg;
      exit 2
  in
  match Eval.Json.of_string content with
  | Ok v -> v
  | Error msg ->
    Printf.eprintf "compare: %s: %s\n" path msg;
    exit 2

let str_member k j =
  Option.bind (Eval.Json.member k j) Eval.Json.to_string_opt

let float_member k j =
  Option.bind (Eval.Json.member k j) Eval.Json.to_float_opt

let list_member k j =
  match Eval.Json.member k j with Some v -> Eval.Json.to_list v | None -> []

let table_title t = Option.value ~default:"<untitled>" (str_member "title" t)

(* Rows as (label, cells) pairs; columns as a string list. *)
let strings j = List.filter_map Eval.Json.to_string_opt (Eval.Json.to_list j)

let table_columns t =
  match Eval.Json.member "columns" t with Some c -> strings c | None -> []

let table_rows t =
  List.map
    (fun r ->
      ( Option.value ~default:"" (str_member "label" r),
        match Eval.Json.member "cells" r with
        | Some c -> strings c
        | None -> [] ))
    (list_member "rows" t)

(* Every drifted cell gets its own FAIL line (naming the column and the
   offending baseline file), and comparison continues past the first
   mismatch so one run reports the complete drift set. *)
let compare_table ~baseline_path ~title base fresh =
  let bc = table_columns base and fc = table_columns fresh in
  if bc <> fc then begin
    fail "%s: columns differ (baseline %s)\n  baseline: %s\n  fresh:    %s"
      title baseline_path (String.concat " | " bc) (String.concat " | " fc);
    note ~kind:"columns" ~table:title
      ~baseline:(String.concat " | " bc)
      ~fresh:(String.concat " | " fc) ()
  end;
  let column i =
    match List.nth_opt bc i with
    | Some c -> c
    | None -> Printf.sprintf "column %d" i
  in
  let br = table_rows base and fr = table_rows fresh in
  if List.length br <> List.length fr then begin
    fail "%s: %d rows in baseline, %d in fresh (baseline %s)" title
      (List.length br) (List.length fr) baseline_path;
    note ~kind:"row-count" ~table:title
      ~baseline:(string_of_int (List.length br))
      ~fresh:(string_of_int (List.length fr))
      ()
  end
  else
    List.iter2
      (fun (bl, bcells) (fl, fcells) ->
        if bl <> fl then begin
          fail "%s: row label %S became %S (baseline %s)" title bl fl
            baseline_path;
          note ~kind:"row-label" ~table:title ~baseline:bl ~fresh:fl ()
        end;
        let row = if bl = fl then bl else Printf.sprintf "%s->%s" bl fl in
        if List.length bcells <> List.length fcells then begin
          fail "%s / %s: %d cells in baseline, %d in fresh (baseline %s)" title
            row (List.length bcells) (List.length fcells) baseline_path;
          note ~kind:"cell-count" ~table:title ~row
            ~baseline:(string_of_int (List.length bcells))
            ~fresh:(string_of_int (List.length fcells))
            ()
        end
        else
          List.iteri
            (fun i (b, f) ->
              if b <> f then begin
                fail "%s / %s / %s: %S became %S (baseline %s)" title row
                  (column i) b f baseline_path;
                note ~kind:"cell" ~table:title ~row ~column:(column i)
                  ~baseline:b ~fresh:f ()
              end)
            (List.combine bcells fcells))
      br fr

let check_timing ~tolerance ~what base fresh =
  match (base, fresh) with
  | Some b, Some f when b > 0.0 ->
    let ratio = f /. b in
    if ratio > 1.0 +. tolerance then begin
      fail "%s: %.3fs -> %.3fs (+%.0f%% > %.0f%% tolerance)" what b f
        ((ratio -. 1.0) *. 100.0)
        (tolerance *. 100.0);
      note ~kind:"timing" ~table:what
        ~baseline:(Printf.sprintf "%.3f" b)
        ~fresh:(Printf.sprintf "%.3f" f)
        ()
    end
  | _ -> () (* baseline committed without timings: skip *)

let () =
  let tolerance = ref 0.20 in
  let json_out = ref None in
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | ("--tolerance" | "--timing-tolerance") :: v :: rest ->
      (match float_of_string_opt v with
      | Some p when p >= 0.0 -> tolerance := p /. 100.0
      | _ -> usage ());
      parse rest
    | "--json" :: path :: rest ->
      json_out := Some path;
      parse rest
    | a :: _ when String.length a > 1 && a.[0] = '-' -> usage ()
    | a :: rest ->
      positional := a :: !positional;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_path, fresh_path =
    match List.rev !positional with [ b; f ] -> (b, f) | _ -> usage ()
  in
  let base = load baseline_path and fresh = load fresh_path in
  (match (str_member "schema" base, str_member "schema" fresh) with
  | Some "bcp-bench/v1", Some "bcp-bench/v1" -> ()
  | b, f ->
    Printf.eprintf "compare: expected schema bcp-bench/v1 (got %s vs %s)\n"
      (Option.value ~default:"<none>" b)
      (Option.value ~default:"<none>" f);
    exit 2);
  let fresh_tables = list_member "tables" fresh in
  let find_fresh title =
    List.find_opt (fun t -> table_title t = title) fresh_tables
  in
  let base_tables = list_member "tables" base in
  List.iter
    (fun bt ->
      let title = table_title bt in
      match find_fresh title with
      | None ->
        fail "%s: missing from fresh results (baseline %s)" title baseline_path;
        note ~kind:"missing-table" ~table:title ~baseline:title ~fresh:"" ()
      | Some ft ->
        compare_table ~baseline_path ~title bt ft;
        check_timing ~tolerance:!tolerance ~what:title
          (float_member "wall_s" bt) (float_member "wall_s" ft))
    base_tables;
  check_timing ~tolerance:!tolerance ~what:"total wall time"
    (float_member "total_wall_s" base)
    (float_member "total_wall_s" fresh);
  (match !json_out with
  | None -> ()
  | Some path ->
    let doc =
      Eval.Json.Obj
        [
          ("schema", Eval.Json.String "bcp-compare/v1");
          ("baseline", Eval.Json.String baseline_path);
          ("fresh", Eval.Json.String fresh_path);
          ("tolerance", Eval.Json.Float !tolerance);
          ("tables", Eval.Json.Int (List.length base_tables));
          ("ok", Eval.Json.Bool (!errors = 0));
          ("failures", Eval.Json.List (List.rev !findings));
        ]
    in
    let oc = open_out path in
    output_string oc (Eval.Json.to_string ~indent:2 doc);
    output_char oc '\n';
    close_out oc);
  if !errors > 0 then begin
    Printf.printf "\n%d failure(s) vs baseline %s\n" !errors baseline_path;
    exit 1
  end
  else
    Printf.printf "OK: %d table(s) match baseline %s\n"
      (List.length base_tables) baseline_path
