(* Perf time-series pipeline over benchmark runs.

   Usage:
     history append RUN.json HISTORY.jsonl [--label STR]
     history report HISTORY.jsonl [--suite NAME]

   [append] digests one bcp-bench/v1 results file into a single
   bcp-history/v1 line appended to HISTORY.jsonl: suite, seed, jobs,
   the tables verbatim (cells and per-table wall_s) and — when the run
   was profiled — the bcp-prof/v1 span/counter aggregates.  One line
   per run keeps the history greppable and append-only, so nightly CI
   can grow it with a cache and publish it as an artifact.

   [report] reads every line back and prints the drift of each series:
   wall-clock timings, profile span self-times and profiler counters
   (probes, pruned edges) as first/last/min/max with the relative
   change, result cells as distinct-value counts (a correctness cell
   that ever changes is drift worth reading).

   Exit codes: 0 ok, 2 usage / IO / parse error. *)

let usage () =
  prerr_endline
    "usage: history append RUN.json HISTORY.jsonl [--label STR]\n\
    \       history report HISTORY.jsonl [--suite NAME]";
  exit 2

let load path =
  let content =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error msg ->
      Printf.eprintf "history: cannot read %s: %s\n" path msg;
      exit 2
  in
  match Eval.Json.of_string content with
  | Ok v -> v
  | Error msg ->
    Printf.eprintf "history: %s: %s\n" path msg;
    exit 2

let str_member k j =
  Option.bind (Eval.Json.member k j) Eval.Json.to_string_opt

let float_member k j =
  Option.bind (Eval.Json.member k j) Eval.Json.to_float_opt

let list_member k j =
  match Eval.Json.member k j with Some v -> Eval.Json.to_list v | None -> []

(* ------------------------------ append ------------------------------ *)

let append run_path history_path label =
  let run = load run_path in
  (match str_member "schema" run with
  | Some "bcp-bench/v1" -> ()
  | s ->
    Printf.eprintf "history: %s: expected schema bcp-bench/v1 (got %s)\n"
      run_path
      (Option.value ~default:"<none>" s);
    exit 2);
  let opt k = match Eval.Json.member k run with
    | Some v -> [ (k, v) ]
    | None -> []
  in
  let line =
    Eval.Json.Obj
      ([ ("schema", Eval.Json.String "bcp-history/v1") ]
      @ (match label with
        | None -> []
        | Some l -> [ ("label", Eval.Json.String l) ])
      @ opt "suite" @ opt "seed" @ opt "jobs"
      @ [ ("tables", Eval.Json.List (list_member "tables" run)) ]
      @ opt "total_wall_s" @ opt "profile")
  in
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 history_path
  in
  output_string oc (Eval.Json.to_string line);
  output_char oc '\n';
  close_out oc;
  Printf.printf "appended %s to %s\n" run_path history_path

(* ------------------------------ report ------------------------------ *)

let load_lines path suite_filter =
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "history: cannot read %s: %s\n" path msg;
      exit 2
  in
  let lines = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then
         match Eval.Json.of_string line with
         | Error msg ->
           Printf.eprintf "history: %s:%d: %s\n" path !lineno msg;
           exit 2
         | Ok j -> (
           match str_member "schema" j with
           | Some "bcp-history/v1" ->
             let keep =
               match suite_filter with
               | None -> true
               | Some s -> str_member "suite" j = Some s
             in
             if keep then lines := j :: !lines
           | s ->
             Printf.eprintf
               "history: %s:%d: expected schema bcp-history/v1 (got %s)\n" path
               !lineno
               (Option.value ~default:"<none>" s);
             exit 2)
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

(* Cell values like "9.03%" or "0.100 ms" drift-compare on their leading
   number; cells with none fall back to distinct-string counting. *)
let numeric_prefix s =
  try Scanf.sscanf s " %f" (fun f -> Some f) with
  | Scanf.Scan_failure _ | Failure _ | End_of_file -> None

(* Ordered accumulation: series keep first-seen order so the report is
   stable across runs of the tool. *)
let series : (string, float list ref) Hashtbl.t = Hashtbl.create 256
let cells : (string, string list ref) Hashtbl.t = Hashtbl.create 1024
let order : string list ref = ref []

let push tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some l -> l := v :: !l
  | None ->
    Hashtbl.add tbl key (ref [ v ]);
    order := key :: !order

let collect line =
  Option.iter (push series "total wall time (s)") (float_member "total_wall_s" line);
  List.iter
    (fun t ->
      let title = Option.value ~default:"<untitled>" (str_member "title" t) in
      Option.iter
        (push series (Printf.sprintf "%s (wall s)" title))
        (float_member "wall_s" t);
      let columns =
        List.filter_map Eval.Json.to_string_opt (list_member "columns" t)
      in
      List.iter
        (fun r ->
          let label = Option.value ~default:"" (str_member "label" r) in
          List.iteri
            (fun i c ->
              match Eval.Json.to_string_opt c with
              | None -> ()
              | Some cell ->
                let column =
                  match List.nth_opt columns i with
                  | Some c -> c
                  | None -> Printf.sprintf "column %d" i
                in
                push cells
                  (Printf.sprintf "%s / %s / %s" title label column)
                  cell)
            (list_member "cells" r))
        (list_member "rows" t))
    (list_member "tables" line);
  match Eval.Json.member "profile" line with
  | None -> ()
  | Some prof ->
    List.iter
      (fun s ->
        match (str_member "name" s, float_member "self_ns" s) with
        | Some name, Some self ->
          push series (Printf.sprintf "span %s (self ms)" name) (self /. 1e6)
        | _ -> ())
      (list_member "spans" prof);
    (* Profiler counters (admission probes, pruned edges, oracle hits…)
       are series too: the nightly report tracks probe-count drift the
       same way it tracks wall clock. *)
    (match Eval.Json.member "counters" prof with
    | Some (Eval.Json.Obj kvs) ->
      List.iter
        (fun (name, v) ->
          Option.iter
            (push series (Printf.sprintf "counter %s" name))
            (Eval.Json.to_float_opt v))
        kvs
    | _ -> ())

let report history_path suite_filter =
  let lines = load_lines history_path suite_filter in
  if lines = [] then begin
    Printf.printf "history: no matching runs in %s\n" history_path;
    exit 0
  end;
  List.iter collect lines;
  Printf.printf "history: %d run(s) in %s%s\n\n" (List.length lines)
    history_path
    (match suite_filter with
    | None -> ""
    | Some s -> Printf.sprintf " (suite %s)" s);
  let keys = List.rev !order in
  let timing_keys = List.filter (Hashtbl.mem series) keys in
  if timing_keys <> [] then begin
    Printf.printf "%-58s %9s %9s %9s %9s %8s\n" "timing / span / counter series"
      "first" "last" "min" "max" "drift";
    List.iter
      (fun key ->
        let vs = List.rev !(Hashtbl.find series key) in
        let first = List.hd vs and last = List.hd (List.rev vs) in
        let mn = List.fold_left min first vs
        and mx = List.fold_left max first vs in
        let drift =
          if first = 0.0 then "n/a"
          else Printf.sprintf "%+.1f%%" ((last /. first -. 1.0) *. 100.0)
        in
        Printf.printf "%-58s %9.3f %9.3f %9.3f %9.3f %8s\n" key first last mn
          mx drift)
      timing_keys;
    print_newline ()
  end;
  let drifted = ref 0 and stable = ref 0 in
  List.iter
    (fun key ->
      match Hashtbl.find_opt cells key with
      | None -> ()
      | Some l ->
        let vs = List.rev !l in
        let distinct = List.sort_uniq String.compare vs in
        if List.length distinct <= 1 then incr stable
        else begin
          incr drifted;
          let first = List.hd vs and last = List.hd (List.rev vs) in
          (match (numeric_prefix first, numeric_prefix last) with
          | Some f, Some g when f <> 0.0 ->
            Printf.printf
              "cell drift  %s: %S -> %S (%d distinct values, %+.1f%%)\n" key
              first last (List.length distinct)
              ((g /. f -. 1.0) *. 100.0)
          | _ ->
            Printf.printf "cell drift  %s: %S -> %S (%d distinct values)\n" key
              first last (List.length distinct))
        end)
    keys;
  Printf.printf "cells: %d stable, %d drifted\n" !stable !drifted

let () =
  match Array.to_list Sys.argv with
  | _ :: "append" :: rest -> (
    match rest with
    | [ run; hist ] -> append run hist None
    | [ run; hist; "--label"; l ] -> append run hist (Some l)
    | _ -> usage ())
  | _ :: "report" :: rest -> (
    match rest with
    | [ hist ] -> report hist None
    | [ hist; "--suite"; s ] -> report hist (Some s)
    | _ -> usage ())
  | _ -> usage ()
