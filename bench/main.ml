(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper at full scale
   (8x8 torus / mesh, 4032 connections) and prints them in the paper's
   layout — this is the reproduction harness proper.

   Part 2 runs the same experiments on reduced (4x4) instances — a
   minutes-to-seconds-scale suite used by CI's bench-smoke job.  With
   [--micro] it additionally runs Bechamel micro-benchmarks on the core
   data-structure kernels.

   Flags:
     --part1-only / --part2-only   select a part (default: both)
     --jobs N                      domain count for scenario sweeps
     --json FILE                   machine-readable results (bcp-bench/v1)
     --omit-timings                drop wall-clock fields from the JSON
                                   (used to commit stable baselines)
     --micro                       run the Bechamel micro-benchmarks
     --seed N                      PRNG seed (default 42) *)

let seed = ref 42
let double_sample = 300 (* of 2016 double-node pairs; keeps the run minutes-scale *)

(* Every table produced during the run, with its wall-clock cost, in
   emission order. *)
let collected : (Eval.Report.t * float) list ref = ref []

(* Bechamel kernel timings (name, ns/run), when [--micro] ran. *)
let kernel_timings : (string * float) list ref = ref []

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Time the construction of a report, print it, and record it for the
   JSON sink.  The timing never influences the table contents, so the
   rendered output stays byte-identical across job counts. *)
let table mk =
  let t0 = Unix.gettimeofday () in
  let report = mk () in
  let dt = Unix.gettimeofday () -. t0 in
  collected := (report, dt) :: !collected;
  Eval.Report.print report

let part1 () =
  let seed = !seed in
  hr "FIGURE 9 (a): spare bandwidth vs load, single backup, 8x8 torus";
  table (fun () ->
      Eval.Spare_bw.report Eval.Setup.Torus8 ~backups:1
        (Eval.Spare_bw.run ~seed Eval.Setup.Torus8 ~backups:1));
  hr "FIGURE 9 (b): spare bandwidth vs load, double backups, 8x8 torus";
  table (fun () ->
      Eval.Spare_bw.report Eval.Setup.Torus8 ~backups:2
        (Eval.Spare_bw.run ~seed Eval.Setup.Torus8 ~backups:2));
  hr "FIGURE 9 (c): spare bandwidth vs load, single backup, 8x8 mesh";
  table (fun () ->
      Eval.Spare_bw.report Eval.Setup.Mesh8 ~backups:1
        (Eval.Spare_bw.run ~seed Eval.Setup.Mesh8 ~backups:1));

  hr "TABLE 1 (a): R_fast, same mux degrees, single backup, 8x8 torus";
  table (fun () ->
      Eval.Rfast.table_same_degree ~seed ~double_sample Eval.Setup.Torus8
        ~backups:1);
  hr "TABLE 1 (b): R_fast, same mux degrees, double backups, 8x8 torus";
  table (fun () ->
      Eval.Rfast.table_same_degree ~seed ~double_sample Eval.Setup.Torus8
        ~backups:2);
  hr "TABLE 1 (c): R_fast, same mux degrees, single backup, 8x8 mesh";
  table (fun () ->
      Eval.Rfast.table_same_degree ~seed ~double_sample Eval.Setup.Mesh8
        ~backups:1);

  hr "TABLE 2 (a): R_fast, mixed mux degrees, single backup, 8x8 torus";
  table (fun () ->
      Eval.Rfast.table_mixed_degrees ~seed ~double_sample Eval.Setup.Torus8
        ~backups:1);
  hr "TABLE 2 (b): R_fast, mixed mux degrees, double backups, 8x8 torus";
  table (fun () ->
      Eval.Rfast.table_mixed_degrees ~seed ~double_sample Eval.Setup.Torus8
        ~backups:2);
  hr "TABLE 2 (c): R_fast, mixed mux degrees, single backup, 8x8 mesh";
  table (fun () ->
      Eval.Rfast.table_mixed_degrees ~seed ~double_sample Eval.Setup.Mesh8
        ~backups:1);

  hr "TABLE 3 (a): R_fast, brute-force multiplexing, 8x8 torus";
  table (fun () ->
      Eval.Rfast.table_brute_force ~seed ~double_sample Eval.Setup.Torus8);
  hr "TABLE 3 (b): R_fast, brute-force multiplexing, 8x8 mesh";
  table (fun () ->
      Eval.Rfast.table_brute_force ~seed ~double_sample Eval.Setup.Mesh8);

  hr "SECTION 5.3: recovery delay vs bound (event-driven BCP, 8x8 torus)";
  let est = Eval.Setup.build ~seed ~backups:1 ~mux_degree:3 Eval.Setup.Torus8 in
  Printf.printf "(established %d, rejected %d, load %.2f%%, spare %.2f%%)\n"
    est.Eval.Setup.established est.Eval.Setup.rejected est.Eval.Setup.load
    est.Eval.Setup.spare;
  table (fun () ->
      Eval.Recovery_delay.report
        [ Eval.Recovery_delay.measure ~seed ~scenario_count:12 est.Eval.Setup.ns ]);

  hr "SECTION 4.2: channel-switching schemes 1/2/3";
  table (fun () ->
      Eval.Recovery_delay.compare_schemes ~seed ~scenario_count:6
        est.Eval.Setup.ns);
  table (fun () -> Eval.Ablations.scheme_coverage ~seed est.Eval.Setup.ns);

  hr "SECTION 4.3: priority-based activation";
  table (fun () ->
      Eval.Ablations.priority_activation ~seed ~double_sample Eval.Setup.Torus8);

  hr "SECTION 7.1/7.4: hot-spot (inhomogeneous) traffic";
  table (fun () -> Eval.Ablations.inhomogeneous ~seed Eval.Setup.Torus8);

  hr "FIGURE 8: message loss during failure recovery (data plane)";
  table (fun () ->
      Eval.Message_loss.report (Eval.Message_loss.run ~seed Eval.Setup.Torus8));

  hr "EXTENSION: spare-aware backup routing [HAN97b]";
  table (fun () -> Eval.Ablations.backup_routing ~seed Eval.Setup.Torus8);

  hr "EXTENSION: R_fast under k simultaneous link failures";
  table (fun () -> Eval.Multi_failure.sweep ~seed Eval.Setup.Torus8);

  hr "SECTION 8: BCP vs reactive re-establishment [BAN93]";
  table (fun () ->
      Eval.Baselines.report Eval.Setup.Torus8
        (Eval.Baselines.compare ~seed ~double_sample Eval.Setup.Torus8));

  hr "SECTION 7.1: sensitivity to traffic and topology + S_max audit";
  table (fun () -> Eval.Sensitivity.traffic ~seed Eval.Setup.Torus8);
  table (fun () -> Eval.Sensitivity.topology ~seed ());
  table (fun () ->
      Eval.Sensitivity.s_max_audit est.Eval.Setup.ns Rcc.Transport.default_params);

  hr "FIGURE 3: Markov reliability models vs combinatorial P_r";
  table (fun () ->
      Eval.Reliability_cmp.report
        (Eval.Reliability_cmp.compute ~hops:[ 1; 2; 4; 7; 10; 14 ] ()))

(* ------------- Part 2: reduced 4x4 suite (CI bench-smoke) ------------- *)

let part2 () =
  let seed = !seed in
  hr "4x4 FIGURE 9: spare bandwidth vs load, single backup, 4x4 torus";
  table (fun () ->
      Eval.Spare_bw.report Eval.Setup.Torus4 ~backups:1
        (Eval.Spare_bw.run ~seed Eval.Setup.Torus4 ~backups:1));

  hr "4x4 TABLE 1: R_fast, same mux degrees, single backup, 4x4 torus";
  table (fun () ->
      Eval.Rfast.table_same_degree ~seed Eval.Setup.Torus4 ~backups:1);

  hr "4x4 TABLE 2: R_fast, mixed mux degrees, single backup, 4x4 mesh";
  table (fun () ->
      Eval.Rfast.table_mixed_degrees ~seed Eval.Setup.Mesh4 ~backups:1);

  hr "4x4 TABLE 3: R_fast, brute-force multiplexing, 4x4 torus";
  table (fun () -> Eval.Rfast.table_brute_force ~seed Eval.Setup.Torus4);

  hr "4x4 SECTION 5.3: recovery delay vs bound (event-driven BCP)";
  let est = Eval.Setup.build ~seed ~backups:1 ~mux_degree:3 Eval.Setup.Torus4 in
  table (fun () ->
      Eval.Recovery_delay.report
        [ Eval.Recovery_delay.measure ~seed ~scenario_count:8 est.Eval.Setup.ns ]);

  hr "4x4 SECTION 4.2: channel-switching scheme coverage";
  table (fun () -> Eval.Ablations.scheme_coverage ~seed est.Eval.Setup.ns);

  hr "4x4 SECTION 7.1/7.4: hot-spot (inhomogeneous) traffic";
  table (fun () -> Eval.Ablations.inhomogeneous ~seed Eval.Setup.Torus4);

  hr "4x4 FIGURE 8: message loss during failure recovery";
  table (fun () ->
      Eval.Message_loss.report (Eval.Message_loss.run ~seed Eval.Setup.Torus4));

  hr "4x4 EXTENSION: R_fast under k simultaneous link failures";
  table (fun () -> Eval.Multi_failure.sweep ~seed Eval.Setup.Torus4);

  hr "4x4 CHAOS: impairment sweep, oracle detector";
  table (fun () ->
      Eval.Chaos.sweep ~seed ~scenario_count:4 ~detector:`Oracle
        Eval.Setup.Torus4);

  hr "FIGURE 3: Markov reliability models vs combinatorial P_r";
  table (fun () ->
      Eval.Reliability_cmp.report
        (Eval.Reliability_cmp.compute ~hops:[ 1; 2; 4; 7; 10; 14 ] ()))

(* ------------- Bechamel micro-benchmarks (--micro) ------------- *)

open Bechamel
open Toolkit

let small_net () = Net.Builders.torus ~rows:4 ~cols:4 ~capacity:50.0

let establish_small backups mux_degree =
  let topo = small_net () in
  let ns = Bcp.Netstate.create topo () in
  let rng = Sim.Prng.create !seed in
  let requests =
    Workload.Generator.shuffled rng
      (Workload.Generator.all_pairs ~backups ~mux_degree topo)
  in
  ignore (Eval.Setup.establish_all ns requests);
  ns

let bench_fig9_kernel () =
  Test.make ~name:"fig9-kernel (4x4 torus establishment, mux=3)"
    (Staged.stage (fun () -> ignore (establish_small 1 3)))

let bench_table1_kernel () =
  let ns = establish_small 1 3 in
  let topo = Bcp.Netstate.topology ns in
  let scenarios = Failures.Scenario.all_single_links topo in
  Test.make ~name:"table1-kernel (single-link R_fast sweep)"
    (Staged.stage (fun () ->
         List.iter
           (fun (sc : Failures.Scenario.t) ->
             ignore
               (Bcp.Recovery.simulate ns ~failed:sc.Failures.Scenario.components))
           scenarios))

let bench_table2_kernel () =
  let topo = small_net () in
  let ns = Bcp.Netstate.create topo () in
  let rng = Sim.Prng.create !seed in
  let requests =
    Workload.Generator.with_mux_mix ~degrees:[ 1; 3; 5; 6 ]
      (Workload.Generator.shuffled rng (Workload.Generator.all_pairs topo))
  in
  ignore (Eval.Setup.establish_all ns requests);
  let scenarios = Failures.Scenario.all_single_nodes topo in
  Test.make ~name:"table2-kernel (mixed-degree single-node R_fast)"
    (Staged.stage (fun () ->
         List.iter
           (fun (sc : Failures.Scenario.t) ->
             ignore
               (Bcp.Recovery.simulate ns ~failed:sc.Failures.Scenario.components))
           scenarios))

let bench_table3_kernel () =
  let topo = small_net () in
  let ns = Bcp.Netstate.create ~policy:(Bcp.Netstate.Brute_force 5.0) topo () in
  let rng = Sim.Prng.create !seed in
  ignore
    (Eval.Setup.establish_all ns
       (Workload.Generator.shuffled rng (Workload.Generator.all_pairs topo)));
  let scenarios = Failures.Scenario.all_single_links topo in
  Test.make ~name:"table3-kernel (brute-force R_fast sweep)"
    (Staged.stage (fun () ->
         List.iter
           (fun (sc : Failures.Scenario.t) ->
             ignore
               (Bcp.Recovery.simulate ns ~failed:sc.Failures.Scenario.components))
           scenarios))

let bench_delay_kernel () =
  let ns = establish_small 1 3 in
  Test.make ~name:"delay-kernel (event-driven recovery, 1 link)"
    (Staged.stage (fun () ->
         let sim = Bcp.Simnet.create ns in
         Bcp.Simnet.fail_link sim ~at:0.01 0;
         Bcp.Simnet.run ~until:0.1 sim;
         Bcp.Simnet.finalize sim))

let bench_markov_kernel () =
  Test.make ~name:"markov-kernel (Fig 3 R(t) + MTTF)"
    (Staged.stage (fun () ->
         ignore (Eval.Reliability_cmp.compute ~hops:[ 1; 4; 10 ] ())))

let bench_mux_register () =
  let topo = small_net () in
  let mux = Bcp.Mux.create topo ~lambda:1e-4 in
  let mk i =
    let comps =
      Array.init 9 (fun k -> (2 * ((i + (k * 7)) mod 200)) + (k land 1))
    in
    Array.sort Int.compare comps;
    {
      Bcp.Mux.backup = i;
      conn = i;
      serial = 1;
      nu = 3e-4;
      bw = 1.0;
      primary_components = comps;
    }
  in
  for i = 0 to 199 do
    Bcp.Mux.register mux ~link:0 (mk i)
  done;
  Test.make ~name:"mux required_with (200 backups on link)"
    (Staged.stage (fun () -> ignore (Bcp.Mux.required_with mux ~link:0 (mk 9999))))

let bench_dijkstra () =
  let topo = Net.Builders.torus ~rows:8 ~cols:8 ~capacity:200.0 in
  Test.make ~name:"shortest-path (8x8 torus, corner to corner)"
    (Staged.stage (fun () ->
         ignore (Routing.Shortest.shortest_path topo ~src:0 ~dst:63)))

let bench_engine () =
  Test.make ~name:"event engine (10k timers)"
    (Staged.stage (fun () ->
         let e = Sim.Engine.create () in
         for i = 1 to 10_000 do
           ignore (Sim.Engine.schedule e ~at:(float_of_int i) (fun () -> ()))
         done;
         Sim.Engine.run e))

let benchmarks () =
  [
    bench_fig9_kernel ();
    bench_table1_kernel ();
    bench_table2_kernel ();
    bench_table3_kernel ();
    bench_delay_kernel ();
    bench_markov_kernel ();
    bench_mux_register ();
    bench_dijkstra ();
    bench_engine ();
  ]

let run_bechamel () =
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) () in
  let instances = Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true
             ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            kernel_timings := (name, est) :: !kernel_timings;
            Printf.printf "  %-55s %14.1f ns/run\n%!" name est
          | _ -> Printf.printf "  %-55s (no estimate)\n%!" name)
        results)
    (benchmarks ())

(* ------------- JSON output (schema bcp-bench/v1) ------------- *)

let write_json ~path ~suite ~omit_timings ~total_wall =
  let tables =
    List.rev_map
      (fun (report, wall) ->
        match Eval.Report.to_json report with
        | Eval.Json.Obj fields when not omit_timings ->
          Eval.Json.Obj (fields @ [ ("wall_s", Eval.Json.Float wall) ])
        | j -> j)
      !collected
  in
  let base =
    [
      ("schema", Eval.Json.String "bcp-bench/v1");
      ("suite", Eval.Json.String suite);
      ("seed", Eval.Json.Int !seed);
      ("jobs", Eval.Json.Int (Sim.Pool.current_jobs ()));
      ("tables", Eval.Json.List tables);
    ]
  in
  let timed =
    if omit_timings then base
    else
      base
      @ [
          ( "timings",
            Eval.Json.List
              (List.rev_map
                 (fun (name, ns) ->
                   Eval.Json.Obj
                     [
                       ("name", Eval.Json.String name);
                       ("ns_per_run", Eval.Json.Float ns);
                     ])
                 !kernel_timings) );
          ("total_wall_s", Eval.Json.Float total_wall);
        ]
  in
  let oc = open_out path in
  output_string oc (Eval.Json.to_string ~indent:2 (Eval.Json.Obj timed));
  output_char oc '\n';
  close_out oc

(* ------------- CLI ------------- *)

let () =
  let part1_only = ref false in
  let part2_only = ref false in
  let micro = ref false in
  let json_path = ref None in
  let omit_timings = ref false in
  let jobs = ref 1 in
  let usage = "bench [--part1-only|--part2-only] [--jobs N] [--json FILE] [--omit-timings] [--micro] [--seed N]" in
  let spec =
    [
      ("--part1-only", Arg.Set part1_only, " Run only the full-scale 8x8 suite");
      ("--part2-only", Arg.Set part2_only, " Run only the reduced 4x4 suite");
      ("--jobs", Arg.Set_int jobs, "N Domains for scenario sweeps (default 1)");
      ( "--json",
        Arg.String (fun s -> json_path := Some s),
        "FILE Write machine-readable results (schema bcp-bench/v1)" );
      ( "--omit-timings",
        Arg.Set omit_timings,
        " Omit wall-clock fields from the JSON (stable baselines)" );
      ("--micro", Arg.Set micro, " Run the Bechamel micro-benchmarks");
      ("--seed", Arg.Set_int seed, "N PRNG seed (default 42)");
    ]
  in
  let die msg =
    prerr_endline msg;
    Arg.usage spec usage;
    exit 2
  in
  (try Arg.parse_argv Sys.argv (Arg.align spec)
         (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
         usage
   with
  | Arg.Bad msg -> die msg
  | Arg.Help msg ->
    print_string msg;
    exit 0);
  if !jobs < 1 then die (Printf.sprintf "--jobs must be >= 1 (got %d)" !jobs);
  if !part1_only && !part2_only then
    die "--part1-only and --part2-only are mutually exclusive";
  Sim.Pool.set_jobs !jobs;
  let t0 = Unix.gettimeofday () in
  if not !part2_only then part1 ();
  if not !part1_only then part2 ();
  if !micro then begin
    hr "MICRO-BENCHMARKS (Bechamel, reduced-scale kernels)";
    run_bechamel ()
  end;
  let total_wall = Unix.gettimeofday () -. t0 in
  Printf.printf "\ntotal wall time: %.1f s\n" total_wall;
  (match !json_path with
  | None -> ()
  | Some path ->
    let suite =
      if !part1_only then "part1"
      else if !part2_only then "part2"
      else "full"
    in
    write_json ~path ~suite ~omit_timings:!omit_timings ~total_wall)
