(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper at full scale
   (8x8 torus / mesh, 4032 connections) and prints them in the paper's
   layout — this is the reproduction harness proper.

   Part 2 runs the same experiments on reduced (4x4) instances — a
   minutes-to-seconds-scale suite used by CI's bench-smoke job.  With
   [--micro] it additionally runs Bechamel micro-benchmarks on the core
   data-structure kernels.

   Flags:
     --part1-only / --part2-only   select a part (default: both)
     --jobs N                      domain count for scenario sweeps
     --json FILE                   machine-readable results (bcp-bench/v1)
     --omit-timings                drop wall-clock fields from the JSON
                                   (used to commit stable baselines)
     --micro                       run the Bechamel micro-benchmarks
     --seed N                      PRNG seed (default 42) *)

let seed = ref 42
let double_sample = 300 (* of 2016 double-node pairs; keeps the run minutes-scale *)

(* Every table produced during the run, with its wall-clock cost, in
   emission order. *)
let collected : (Eval.Report.t * float) list ref = ref []

(* Bechamel kernel timings (name, ns/run), when [--micro] ran. *)
let kernel_timings : (string * float) list ref = ref []

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Time the construction of a report, print it, and record it for the
   JSON sink.  The timing never influences the table contents, so the
   rendered output stays byte-identical across job counts. *)
let table mk =
  let t0 = Unix.gettimeofday () in
  let report = mk () in
  let dt = Unix.gettimeofday () -. t0 in
  collected := (report, dt) :: !collected;
  Eval.Report.print report

let part1 () =
  let seed = !seed in
  hr "FIGURE 9 (a): spare bandwidth vs load, single backup, 8x8 torus";
  table (fun () ->
      Eval.Spare_bw.report Eval.Setup.Torus8 ~backups:1
        (Eval.Spare_bw.run ~seed Eval.Setup.Torus8 ~backups:1));
  hr "FIGURE 9 (b): spare bandwidth vs load, double backups, 8x8 torus";
  table (fun () ->
      Eval.Spare_bw.report Eval.Setup.Torus8 ~backups:2
        (Eval.Spare_bw.run ~seed Eval.Setup.Torus8 ~backups:2));
  hr "FIGURE 9 (c): spare bandwidth vs load, single backup, 8x8 mesh";
  table (fun () ->
      Eval.Spare_bw.report Eval.Setup.Mesh8 ~backups:1
        (Eval.Spare_bw.run ~seed Eval.Setup.Mesh8 ~backups:1));

  hr "TABLE 1 (a): R_fast, same mux degrees, single backup, 8x8 torus";
  table (fun () ->
      Eval.Rfast.table_same_degree ~seed ~double_sample Eval.Setup.Torus8
        ~backups:1);
  hr "TABLE 1 (b): R_fast, same mux degrees, double backups, 8x8 torus";
  table (fun () ->
      Eval.Rfast.table_same_degree ~seed ~double_sample Eval.Setup.Torus8
        ~backups:2);
  hr "TABLE 1 (c): R_fast, same mux degrees, single backup, 8x8 mesh";
  table (fun () ->
      Eval.Rfast.table_same_degree ~seed ~double_sample Eval.Setup.Mesh8
        ~backups:1);

  hr "TABLE 2 (a): R_fast, mixed mux degrees, single backup, 8x8 torus";
  table (fun () ->
      Eval.Rfast.table_mixed_degrees ~seed ~double_sample Eval.Setup.Torus8
        ~backups:1);
  hr "TABLE 2 (b): R_fast, mixed mux degrees, double backups, 8x8 torus";
  table (fun () ->
      Eval.Rfast.table_mixed_degrees ~seed ~double_sample Eval.Setup.Torus8
        ~backups:2);
  hr "TABLE 2 (c): R_fast, mixed mux degrees, single backup, 8x8 mesh";
  table (fun () ->
      Eval.Rfast.table_mixed_degrees ~seed ~double_sample Eval.Setup.Mesh8
        ~backups:1);

  hr "TABLE 3 (a): R_fast, brute-force multiplexing, 8x8 torus";
  table (fun () ->
      Eval.Rfast.table_brute_force ~seed ~double_sample Eval.Setup.Torus8);
  hr "TABLE 3 (b): R_fast, brute-force multiplexing, 8x8 mesh";
  table (fun () ->
      Eval.Rfast.table_brute_force ~seed ~double_sample Eval.Setup.Mesh8);

  hr "SECTION 5.3: recovery delay vs bound (event-driven BCP, 8x8 torus)";
  let est = Eval.Setup.build ~seed ~backups:1 ~mux_degree:3 Eval.Setup.Torus8 in
  Printf.printf "(established %d, rejected %d, load %.2f%%, spare %.2f%%)\n"
    est.Eval.Setup.established est.Eval.Setup.rejected est.Eval.Setup.load
    est.Eval.Setup.spare;
  table (fun () ->
      Eval.Recovery_delay.report
        [ Eval.Recovery_delay.measure ~seed ~scenario_count:12 est.Eval.Setup.ns ]);

  hr "SECTION 4.2: channel-switching schemes 1/2/3";
  table (fun () ->
      Eval.Recovery_delay.compare_schemes ~seed ~scenario_count:6
        est.Eval.Setup.ns);
  table (fun () -> Eval.Ablations.scheme_coverage ~seed est.Eval.Setup.ns);

  hr "SECTION 4.3: priority-based activation";
  table (fun () ->
      Eval.Ablations.priority_activation ~seed ~double_sample Eval.Setup.Torus8);

  hr "SECTION 7.1/7.4: hot-spot (inhomogeneous) traffic";
  table (fun () -> Eval.Ablations.inhomogeneous ~seed Eval.Setup.Torus8);

  hr "FIGURE 8: message loss during failure recovery (data plane)";
  table (fun () ->
      Eval.Message_loss.report (Eval.Message_loss.run ~seed Eval.Setup.Torus8));

  hr "EXTENSION: spare-aware backup routing [HAN97b]";
  table (fun () -> Eval.Ablations.backup_routing ~seed Eval.Setup.Torus8);

  hr "EXTENSION: R_fast under k simultaneous link failures";
  table (fun () -> Eval.Multi_failure.sweep ~seed Eval.Setup.Torus8);

  hr "SECTION 8: BCP vs reactive re-establishment [BAN93]";
  table (fun () ->
      Eval.Baselines.report Eval.Setup.Torus8
        (Eval.Baselines.compare ~seed ~double_sample Eval.Setup.Torus8));

  hr "SECTION 7.1: sensitivity to traffic and topology + S_max audit";
  table (fun () -> Eval.Sensitivity.traffic ~seed Eval.Setup.Torus8);
  table (fun () -> Eval.Sensitivity.topology ~seed ());
  table (fun () ->
      Eval.Sensitivity.s_max_audit est.Eval.Setup.ns Rcc.Transport.default_params);

  hr "FIGURE 3: Markov reliability models vs combinatorial P_r";
  table (fun () ->
      Eval.Reliability_cmp.report
        (Eval.Reliability_cmp.compute ~hops:[ 1; 2; 4; 7; 10; 14 ] ()))

(* ------------- Part 2: reduced 4x4 suite (CI bench-smoke) ------------- *)

let part2 () =
  let seed = !seed in
  hr "4x4 FIGURE 9: spare bandwidth vs load, single backup, 4x4 torus";
  table (fun () ->
      Eval.Spare_bw.report Eval.Setup.Torus4 ~backups:1
        (Eval.Spare_bw.run ~seed Eval.Setup.Torus4 ~backups:1));

  hr "4x4 TABLE 1: R_fast, same mux degrees, single backup, 4x4 torus";
  table (fun () ->
      Eval.Rfast.table_same_degree ~seed Eval.Setup.Torus4 ~backups:1);

  hr "4x4 TABLE 2: R_fast, mixed mux degrees, single backup, 4x4 mesh";
  table (fun () ->
      Eval.Rfast.table_mixed_degrees ~seed Eval.Setup.Mesh4 ~backups:1);

  hr "4x4 TABLE 3: R_fast, brute-force multiplexing, 4x4 torus";
  table (fun () -> Eval.Rfast.table_brute_force ~seed Eval.Setup.Torus4);

  hr "4x4 SECTION 5.3: recovery delay vs bound (event-driven BCP)";
  let est = Eval.Setup.build ~seed ~backups:1 ~mux_degree:3 Eval.Setup.Torus4 in
  table (fun () ->
      Eval.Recovery_delay.report
        [ Eval.Recovery_delay.measure ~seed ~scenario_count:8 est.Eval.Setup.ns ]);

  hr "4x4 SECTION 4.2: channel-switching scheme coverage";
  table (fun () -> Eval.Ablations.scheme_coverage ~seed est.Eval.Setup.ns);

  hr "4x4 SECTION 7.1/7.4: hot-spot (inhomogeneous) traffic";
  table (fun () -> Eval.Ablations.inhomogeneous ~seed Eval.Setup.Torus4);

  hr "4x4 FIGURE 8: message loss during failure recovery";
  table (fun () ->
      Eval.Message_loss.report (Eval.Message_loss.run ~seed Eval.Setup.Torus4));

  hr "4x4 EXTENSION: R_fast under k simultaneous link failures";
  table (fun () -> Eval.Multi_failure.sweep ~seed Eval.Setup.Torus4);

  hr "4x4 CHAOS: impairment sweep, oracle detector";
  table (fun () ->
      Eval.Chaos.sweep ~seed ~scenario_count:4 ~detector:`Oracle
        Eval.Setup.Torus4);

  hr "FIGURE 3: Markov reliability models vs combinatorial P_r";
  table (fun () ->
      Eval.Reliability_cmp.report
        (Eval.Reliability_cmp.compute ~hops:[ 1; 2; 4; 7; 10; 14 ] ()))

(* ------------- Scaling suite: 4x4 -> 8x8 -> 16x16 at fixed load ------- *)

(* Wall-clock ns/op of a thunk, growing the repetition count until the
   sample is long enough to trust.  Used for the per-tier mux kernels —
   Bechamel stays the harness for the --micro suite, but here one
   gettimeofday loop per (tier, kernel) keeps the scaling run cheap. *)
let time_ns_per_op f =
  (* Timing loops are synthetic: their repetition counts adapt to machine
     speed, so letting them hit [Sim.Prof] counters (mux.register from
     the register+unregister kernel, mux.probe from required_with) would
     make profiled counter totals vary run to run and break the CI
     invariant that workload counters are identical across job counts.
     Suspend the profiler for the duration; only real workload counts. *)
  let profiled = Sim.Prof.enabled () in
  if profiled then Sim.Prof.disable ();
  Fun.protect ~finally:(fun () -> if profiled then Sim.Prof.enable ()) @@ fun () ->
  f ();
  (* warm-up *)
  let rec run reps =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < 0.05 && reps < 1_000_000 then run (reps * 4)
    else dt *. 1e9 /. float_of_int reps
  in
  run 16

let scaling_tiers =
  [
    ("4x4 torus", Eval.Setup.Torus4);
    ("8x8 torus", Eval.Setup.Torus8);
    ("16x16 torus", Eval.Setup.Torus16);
    ("64x64 torus", Eval.Setup.Torus64);
  ]

(* The link carrying the most backups, and a synthetic candidate whose
   primary is the first registered backup's — the worst-case admission
   probe for this loaded network. *)
let busiest_link_candidate ns =
  let mux = Bcp.Netstate.mux ns in
  let topo = Bcp.Netstate.topology ns in
  let busiest = ref 0 in
  for l = 1 to Net.Topology.num_links topo - 1 do
    if Bcp.Mux.count_on mux ~link:l > Bcp.Mux.count_on mux ~link:!busiest then
      busiest := l
  done;
  match Bcp.Mux.on_link mux ~link:!busiest with
  | [] -> None
  | i0 :: _ ->
    Some (!busiest, { i0 with Bcp.Mux.backup = max_int / 2; conn = max_int / 2 })

let build_tier (label, net) =
  let t0 = Unix.gettimeofday () in
  let est = Eval.Setup.build_scaled ~seed:!seed ~backups:1 ~mux_degree:3 net in
  let dt = Unix.gettimeofday () -. t0 in
  (label, net, est, dt)

(* ------------- Routing micro tier: oracle vs reference --------------- *)

(* Dry-runs [Establish.plan] over a fixed request sample against the
   loaded scaling netstates, once with the routing acceleration on and
   once under [set_oracle_disabled] — byte-identical outputs, different
   work.  Probe counts and the path-digest comparison are deterministic
   (table cells, gated against the committed baseline); the wall clocks
   go through "timing:" lines and kernel_timings only, so the table stays
   byte-identical across machines and job counts. *)
let routing_sample = 256

let routing_micro runs =
  hr "ROUTING: goal-directed plan search, oracle vs reference";
  let seed = !seed in
  let tiers =
    List.filter
      (fun (label, _, _, _) -> label = "16x16 torus" || label = "64x64 torus")
      runs
  in
  let measure (label, _net, est, _dt) =
    let ns = est.Eval.Setup.ns in
    let topo = Bcp.Netstate.topology ns in
    let rng = Sim.Prng.create (Sim.Prng.derive ~seed ~index:1009) in
    let requests =
      Workload.Generator.random_pairs rng ~backups:1 ~mux_degree:3 topo
        ~count:routing_sample
    in
    (* Paths, not just path lengths: the acceleration must leave every
       chosen link identical, and a plan's probe record is internal, so
       the digest keeps exactly the plan's externally visible outcome. *)
    let digest (p : Bcp.Establish.plan) =
      match p.Bcp.Establish.plan_outcome with
      | Ok (primary, backups) ->
        Ok
          ( Net.Path.links primary,
            List.map
              (fun (b : Bcp.Establish.planned_backup) ->
                ( b.Bcp.Establish.pb_serial,
                  Net.Path.links b.Bcp.Establish.pb_path ))
              backups )
      | Error e -> Error e
    in
    let run_mode disabled =
      Routing.Shortest.set_oracle_disabled disabled;
      let t0 = Unix.gettimeofday () in
      let plans =
        List.mapi
          (fun i (r : Workload.Generator.request) ->
            Bcp.Establish.plan ns ~conn_id:i
              {
                Bcp.Establish.src = r.Workload.Generator.src;
                dst = r.dst;
                traffic = r.traffic;
                qos = r.qos;
                backups = r.backups;
                mux_degree = r.mux_degree;
              })
          requests
      in
      let dt = Unix.gettimeofday () -. t0 in
      let probes =
        List.fold_left (fun a p -> a + Bcp.Establish.plan_probes p) 0 plans
      in
      (List.map digest plans, probes, dt)
    in
    let oracle_digests, oracle_probes, oracle_dt = run_mode false in
    let ref_digests, ref_probes, ref_dt = run_mode true in
    Routing.Shortest.set_oracle_disabled false;
    ( label,
      oracle_probes,
      ref_probes,
      oracle_digests = ref_digests,
      oracle_dt,
      ref_dt )
  in
  let rows = List.map measure tiers in
  table (fun () ->
      let r =
        Eval.Report.make
          ~title:
            (Printf.sprintf
               "Routing micro: goal-directed plan search (%d dry-run plans, \
                oracle vs reference)"
               routing_sample)
          ~columns:
            [
              "plans";
              "probes (oracle)";
              "probes (reference)";
              "probes saved";
              "paths";
            ]
      in
      List.iter
        (fun (label, op, rp, identical, _, _) ->
          Eval.Report.add_row r ~label
            ~cells:
              [
                string_of_int routing_sample;
                string_of_int op;
                string_of_int rp;
                Eval.Report.pct
                  (100.0 *. (1.0 -. (float_of_int op /. float_of_int rp)));
                (if identical then "identical" else "DIVERGED");
              ])
        rows;
      r);
  List.iter
    (fun (label, _, _, _, odt, rdt) ->
      Printf.printf
        "timing: routing %-12s oracle %8.1f ms (%6.0f us/plan), reference \
         %8.1f ms, speedup %.1fx\n"
        label (odt *. 1e3)
        (odt *. 1e6 /. float_of_int routing_sample)
        (rdt *. 1e3) (rdt /. odt);
      kernel_timings :=
        ( Printf.sprintf "routing plan oracle %s (ns/plan)" label,
          odt *. 1e9 /. float_of_int routing_sample )
        :: ( Printf.sprintf "routing plan reference %s (ns/plan)" label,
             rdt *. 1e9 /. float_of_int routing_sample )
        :: !kernel_timings)
    rows

(* Standalone --routing-only entry: builds just the two micro tiers (the
   same seeded establishments the scaling suite builds, so the table
   cells match the committed scaling baseline rows byte for byte). *)
let routing_only_suite () =
  let runs =
    List.map build_tier
      (List.filter
         (fun (label, _) -> label = "16x16 torus" || label = "64x64 torus")
         scaling_tiers)
  in
  routing_micro runs

let scaling () =
  hr "SCALING: establishment at fixed per-node load (8 req/node, mux=3)";
  (* Tiers run serially (not through the pool): the 64x64 tier dominates
     wall time, and establishment itself shards across the pool's domains
     inside each tier (see [Eval.Setup.establish_all]) — which it could
     not do from inside a pool task, where nested maps run inline. *)
  let runs = List.map build_tier scaling_tiers in
  table (fun () ->
      let r =
        Eval.Report.make
          ~title:
            "Scaling: establishment at fixed per-node load (8 req/node, 1 \
             backup, mux degree 3)"
          ~columns:
            [ "requests"; "established"; "rejected"; "load"; "spare"; "mux entries" ]
      in
      List.iter
        (fun (label, net, est, _) ->
          let ns = est.Eval.Setup.ns in
          let mux = Bcp.Netstate.mux ns in
          let topo = Bcp.Netstate.topology ns in
          let entries = ref 0 in
          for l = 0 to Net.Topology.num_links topo - 1 do
            entries := !entries + Bcp.Mux.count_on mux ~link:l
          done;
          let rows, cols = Eval.Setup.dims net in
          Eval.Report.add_row r ~label
            ~cells:
              [
                string_of_int (8 * rows * cols);
                string_of_int est.Eval.Setup.established;
                string_of_int est.Eval.Setup.rejected;
                Eval.Report.pct est.Eval.Setup.load;
                Eval.Report.pct est.Eval.Setup.spare;
                string_of_int !entries;
              ])
        runs;
      r);
  (* Wall-clock lines are prefixed "timing:" so CI's serial/parallel
     byte-identity diff can filter them; the values also land in the JSON
     "timings" section (dropped with --omit-timings). *)
  List.iter
    (fun (label, _, est, dt) ->
      let attempts =
        est.Eval.Setup.established + est.Eval.Setup.rejected
      in
      let throughput = float_of_int attempts /. dt in
      Printf.printf "timing: %-12s establishment %6.2f s  (%7.0f conns/s)\n"
        label dt throughput;
      kernel_timings :=
        ( Printf.sprintf "scaling establish %s (ns/conn)" label,
          dt *. 1e9 /. float_of_int attempts )
        :: !kernel_timings;
      let ns = est.Eval.Setup.ns in
      match busiest_link_candidate ns with
      | None -> ()
      | Some (link, candidate) ->
        let mux = Bcp.Netstate.mux ns in
        let on = Bcp.Mux.count_on mux ~link in
        let rw_ns =
          time_ns_per_op (fun () ->
              ignore (Bcp.Mux.required_with mux ~link candidate))
        in
        let reg_ns =
          time_ns_per_op (fun () ->
              Bcp.Mux.register mux ~link candidate;
              Bcp.Mux.unregister mux ~link ~backup:candidate.Bcp.Mux.backup)
        in
        Printf.printf
          "timing: %-12s mux kernels on busiest link (%d backups): \
           required_with %8.0f ns/op, register+unregister %8.0f ns/op\n"
          label on rw_ns reg_ns;
        kernel_timings :=
          (Printf.sprintf "scaling mux required_with %s (ns/op)" label, rw_ns)
          :: (Printf.sprintf "scaling mux register+unregister %s (ns/op)" label,
              reg_ns)
          :: !kernel_timings)
    runs;
  (* The routing micro tier rides on the loaded 16x16/64x64 states the
     scaling run just built, so every gated scaling run also gates the
     search-kernel equivalence cells. *)
  routing_micro runs

(* ------------- Churn suite: steady-state lifecycles (--churn-only) ---- *)

(* Offered-load ladders tuned so the top rung actually blocks: 4 Mbps
   connections push the 4x4 torus (50 Mbps links) into admission rejection
   around 10 E/node, and the 16x16 cell exercises the incremental mux
   hot path at production-shaped table sizes.  Outcomes are computed
   before the tables so the recorded walls time only rendering; the
   lifecycle throughput goes through the "timing:" lines and the JSON
   timings section instead. *)
let churn () =
  let seed = !seed in
  let run_tier ~label ~events ~offered ~bandwidth ~fault_every ~net =
    let t0 = Unix.gettimeofday () in
    let outcomes =
      Eval.Churn.run ~seed ~events ~offered ~bandwidth ~fault_every ~windows:4
        net
    in
    let dt = Unix.gettimeofday () -. t0 in
    let total_events =
      List.fold_left
        (fun a (o : Eval.Churn.outcome) -> a + o.Eval.Churn.events)
        0 outcomes
    in
    Printf.printf "timing: churn %-12s %6.2f s  (%d lifecycle events, %7.0f events/s)\n"
      label dt total_events
      (float_of_int total_events /. dt);
    kernel_timings :=
      ( Printf.sprintf "churn %s (ns/event)" label,
        dt *. 1e9 /. float_of_int total_events )
      :: !kernel_timings;
    outcomes
  in
  hr "CHURN: offered-load ladder, 4x4 torus (4 Mbps conns, faults every 25 s)";
  let ladder =
    run_tier ~label:"4x4 ladder" ~events:6_000 ~offered:[ 4.0; 10.0; 24.0 ]
      ~bandwidth:4.0 ~fault_every:25.0 ~net:Eval.Setup.Torus4
  in
  table (fun () ->
      Eval.Churn.summary_report
        ~title:
          "Churn: 4x4 torus offered-load ladder (6k events/cell, 4 Mbps, \
           faults every 25 s)"
        ladder);
  List.iter
    (fun (o : Eval.Churn.outcome) ->
      table (fun () ->
          Eval.Churn.windows_report
            ~title:
              (Printf.sprintf "Churn windows: 4x4 ladder (offered %.1f E/node)"
                 o.Eval.Churn.offered)
            o))
    ladder;
  hr "CHURN: 16x16 torus steady-state cell (1 Mbps conns, faults every 25 s)";
  let big =
    run_tier ~label:"16x16 cell" ~events:4_000 ~offered:[ 4.0 ] ~bandwidth:1.0
      ~fault_every:25.0 ~net:Eval.Setup.Torus16
  in
  table (fun () ->
      Eval.Churn.summary_report
        ~title:"Churn: 16x16 torus steady-state cell (4k events, 4 E/node)"
        big);
  List.iter
    (fun (o : Eval.Churn.outcome) ->
      table (fun () ->
          Eval.Churn.windows_report
            ~title:
              (Printf.sprintf "Churn windows: 16x16 cell (offered %.1f E/node)"
                 o.Eval.Churn.offered)
            o))
    big

(* ------------- Bechamel micro-benchmarks (--micro) ------------- *)

open Bechamel
open Toolkit

let small_net () = Net.Builders.torus ~rows:4 ~cols:4 ~capacity:50.0

let establish_small backups mux_degree =
  let topo = small_net () in
  let ns = Bcp.Netstate.create topo () in
  let rng = Sim.Prng.create !seed in
  let requests =
    Workload.Generator.shuffled rng
      (Workload.Generator.all_pairs ~backups ~mux_degree topo)
  in
  ignore (Eval.Setup.establish_all ns requests);
  ns

let bench_fig9_kernel () =
  Test.make ~name:"fig9-kernel (4x4 torus establishment, mux=3)"
    (Staged.stage (fun () -> ignore (establish_small 1 3)))

let bench_table1_kernel () =
  let ns = establish_small 1 3 in
  let topo = Bcp.Netstate.topology ns in
  let scenarios = Failures.Scenario.all_single_links topo in
  Test.make ~name:"table1-kernel (single-link R_fast sweep)"
    (Staged.stage (fun () ->
         List.iter
           (fun (sc : Failures.Scenario.t) ->
             ignore
               (Bcp.Recovery.simulate ns ~failed:sc.Failures.Scenario.components))
           scenarios))

let bench_table2_kernel () =
  let topo = small_net () in
  let ns = Bcp.Netstate.create topo () in
  let rng = Sim.Prng.create !seed in
  let requests =
    Workload.Generator.with_mux_mix ~degrees:[ 1; 3; 5; 6 ]
      (Workload.Generator.shuffled rng (Workload.Generator.all_pairs topo))
  in
  ignore (Eval.Setup.establish_all ns requests);
  let scenarios = Failures.Scenario.all_single_nodes topo in
  Test.make ~name:"table2-kernel (mixed-degree single-node R_fast)"
    (Staged.stage (fun () ->
         List.iter
           (fun (sc : Failures.Scenario.t) ->
             ignore
               (Bcp.Recovery.simulate ns ~failed:sc.Failures.Scenario.components))
           scenarios))

let bench_table3_kernel () =
  let topo = small_net () in
  let ns = Bcp.Netstate.create ~policy:(Bcp.Netstate.Brute_force 5.0) topo () in
  let rng = Sim.Prng.create !seed in
  ignore
    (Eval.Setup.establish_all ns
       (Workload.Generator.shuffled rng (Workload.Generator.all_pairs topo)));
  let scenarios = Failures.Scenario.all_single_links topo in
  Test.make ~name:"table3-kernel (brute-force R_fast sweep)"
    (Staged.stage (fun () ->
         List.iter
           (fun (sc : Failures.Scenario.t) ->
             ignore
               (Bcp.Recovery.simulate ns ~failed:sc.Failures.Scenario.components))
           scenarios))

let bench_delay_kernel () =
  let ns = establish_small 1 3 in
  Test.make ~name:"delay-kernel (event-driven recovery, 1 link)"
    (Staged.stage (fun () ->
         let sim = Bcp.Simnet.create ns in
         Bcp.Simnet.fail_link sim ~at:0.01 0;
         Bcp.Simnet.run ~until:0.1 sim;
         Bcp.Simnet.finalize sim))

let bench_markov_kernel () =
  Test.make ~name:"markov-kernel (Fig 3 R(t) + MTTF)"
    (Staged.stage (fun () ->
         ignore (Eval.Reliability_cmp.compute ~hops:[ 1; 4; 10 ] ())))

(* Synthetic backup population for the mux kernels: 9-component primaries
   drawn from a 400-slot encoded universe, so candidates overlap a
   realistic fraction of the table. *)
let mux_kernel_info i =
  let comps =
    Array.init 9 (fun k -> (2 * ((i + (k * 7)) mod 200)) + (k land 1))
  in
  let comps =
    Array.of_list (List.sort_uniq Int.compare (Array.to_list comps))
  in
  {
    Bcp.Mux.backup = i;
    conn = i;
    serial = 1;
    nu = 3e-4;
    bw = 1.0;
    primary_components = comps;
  }

let loaded_mux () =
  let mux = Bcp.Mux.create (small_net ()) ~lambda:1e-4 in
  for i = 0 to 199 do
    Bcp.Mux.register mux ~link:0 (mux_kernel_info i)
  done;
  mux

let bench_mux_required_with () =
  let mux = loaded_mux () in
  let candidate = mux_kernel_info 9999 in
  Test.make ~name:"mux required_with (200 backups on link)"
    (Staged.stage (fun () ->
         ignore (Bcp.Mux.required_with mux ~link:0 candidate)))

let bench_mux_register () =
  let mux = loaded_mux () in
  let candidate = mux_kernel_info 9999 in
  Test.make ~name:"mux register+unregister (200 backups on link)"
    (Staged.stage (fun () ->
         Bcp.Mux.register mux ~link:0 candidate;
         Bcp.Mux.unregister mux ~link:0 ~backup:9999))

(* 33 components ≈ a 16-hop primary: the shared_count kernels compare the
   sorted-array merge with the bitset AND+popcount on identical inputs. *)
let shared_kernel_arrays () =
  let mk off =
    Array.init 33 (fun k -> off + (2 * k * 3))
  in
  (mk 0, mk 24)

(* 32 counts per run: the single-op cost (~50-300 ns) sits below the
   harness measurement floor, so batching is what makes the merge/bitset
   gap visible in the ns/run estimates. *)
let bench_shared_count_sorted () =
  let a, b = shared_kernel_arrays () in
  Test.make ~name:"shared_count sorted-array merge (33 comps, x32)"
    (Staged.stage (fun () ->
         for _ = 1 to 32 do
           ignore (Bcp.Mux.shared_count a b)
         done))

let bench_shared_count_bitset () =
  let a, b = shared_kernel_arrays () in
  let ba = Option.get (Bcp.Mux.bitset_of_components a) in
  let bb = Option.get (Bcp.Mux.bitset_of_components b) in
  Test.make ~name:"shared_count bitset popcount (33 comps, x32)"
    (Staged.stage (fun () ->
         for _ = 1 to 32 do
           ignore (Bcp.Mux.shared_count_bitset ba bb)
         done))

let bench_dijkstra () =
  let topo = Net.Builders.torus ~rows:8 ~cols:8 ~capacity:200.0 in
  Test.make ~name:"shortest-path (8x8 torus, corner to corner)"
    (Staged.stage (fun () ->
         ignore (Routing.Shortest.shortest_path topo ~src:0 ~dst:63)))

let bench_engine () =
  Test.make ~name:"event engine (10k timers)"
    (Staged.stage (fun () ->
         let e = Sim.Engine.create () in
         for i = 1 to 10_000 do
           ignore (Sim.Engine.schedule e ~at:(float_of_int i) (fun () -> ()))
         done;
         Sim.Engine.run e))

let benchmarks () =
  [
    bench_fig9_kernel ();
    bench_table1_kernel ();
    bench_table2_kernel ();
    bench_table3_kernel ();
    bench_delay_kernel ();
    bench_markov_kernel ();
    bench_mux_required_with ();
    bench_mux_register ();
    bench_shared_count_sorted ();
    bench_shared_count_bitset ();
    bench_dijkstra ();
    bench_engine ();
  ]

let run_bechamel () =
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) () in
  let instances = Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true
             ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            kernel_timings := (name, est) :: !kernel_timings;
            Printf.printf "  %-55s %14.1f ns/run\n%!" name est
          | _ -> Printf.printf "  %-55s (no estimate)\n%!" name)
        results)
    (benchmarks ())

(* ------------- JSON output (schema bcp-bench/v1) ------------- *)

let write_json ~path ~suite ~omit_timings ~total_wall ~profile =
  let tables =
    List.rev_map
      (fun (report, wall) ->
        match Eval.Report.to_json report with
        | Eval.Json.Obj fields when not omit_timings ->
          Eval.Json.Obj (fields @ [ ("wall_s", Eval.Json.Float wall) ])
        | j -> j)
      !collected
  in
  let base =
    [
      ("schema", Eval.Json.String "bcp-bench/v1");
      ("suite", Eval.Json.String suite);
      ("seed", Eval.Json.Int !seed);
      ("jobs", Eval.Json.Int (Sim.Pool.current_jobs ()));
      ("tables", Eval.Json.List tables);
    ]
  in
  let timed =
    if omit_timings then base
    else
      base
      @ [
          ( "timings",
            Eval.Json.List
              (List.rev_map
                 (fun (name, ns) ->
                   Eval.Json.Obj
                     [
                       ("name", Eval.Json.String name);
                       ("ns_per_run", Eval.Json.Float ns);
                     ])
                 !kernel_timings) );
          ("total_wall_s", Eval.Json.Float total_wall);
        ]
  in
  let timed =
    match profile with
    | None -> timed
    | Some report ->
      timed @ [ ("profile", Eval.Telemetry.prof_to_json report) ]
  in
  let oc = open_out path in
  output_string oc (Eval.Json.to_string ~indent:2 (Eval.Json.Obj timed));
  output_char oc '\n';
  close_out oc

(* ------------- CLI ------------- *)

let () =
  let part1_only = ref false in
  let part2_only = ref false in
  let scaling_only = ref false in
  let churn_only = ref false in
  let routing_only = ref false in
  let micro = ref false in
  let json_path = ref None in
  let omit_timings = ref false in
  let profile = ref false in
  let jobs = ref 1 in
  let usage = "bench [--part1-only|--part2-only|--scaling-only|--churn-only|--routing-only] [--jobs N] [--json FILE] [--omit-timings] [--profile] [--micro] [--seed N]" in
  let spec =
    [
      ("--part1-only", Arg.Set part1_only, " Run only the full-scale 8x8 suite");
      ("--part2-only", Arg.Set part2_only, " Run only the reduced 4x4 suite");
      ( "--scaling-only",
        Arg.Set scaling_only,
        " Run only the 4x4 -> 8x8 -> 16x16 scaling suite" );
      ( "--churn-only",
        Arg.Set churn_only,
        " Run only the steady-state churn suite" );
      ( "--routing-only",
        Arg.Set routing_only,
        " Run only the routing search micro tier (16x16 + 64x64, oracle vs \
         reference)" );
      ("--jobs", Arg.Set_int jobs, "N Domains for scenario sweeps (default 1)");
      ( "--json",
        Arg.String (fun s -> json_path := Some s),
        "FILE Write machine-readable results (schema bcp-bench/v1)" );
      ( "--omit-timings",
        Arg.Set omit_timings,
        " Omit wall-clock fields from the JSON (stable baselines)" );
      ( "--profile",
        Arg.Set profile,
        " Profile the engine (Sim.Prof): hot-span table on stderr, \
         bcp-prof/v1 section in the JSON" );
      ("--micro", Arg.Set micro, " Run the Bechamel micro-benchmarks");
      ("--seed", Arg.Set_int seed, "N PRNG seed (default 42)");
    ]
  in
  let die msg =
    prerr_endline msg;
    Arg.usage spec usage;
    exit 2
  in
  (try Arg.parse_argv Sys.argv (Arg.align spec)
         (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
         usage
   with
  | Arg.Bad msg -> die msg
  | Arg.Help msg ->
    print_string msg;
    exit 0);
  if !jobs < 1 then die (Printf.sprintf "--jobs must be >= 1 (got %d)" !jobs);
  if
    (if !part1_only then 1 else 0)
    + (if !part2_only then 1 else 0)
    + (if !scaling_only then 1 else 0)
    + (if !churn_only then 1 else 0)
    + (if !routing_only then 1 else 0)
    > 1
  then
    die
      "--part1-only, --part2-only, --scaling-only, --churn-only and \
       --routing-only are mutually exclusive";
  Sim.Pool.set_jobs !jobs;
  if !profile then Sim.Prof.enable ();
  let t0 = Unix.gettimeofday () in
  if not (!part2_only || !scaling_only || !churn_only || !routing_only) then
    part1 ();
  if not (!part1_only || !scaling_only || !churn_only || !routing_only) then
    part2 ();
  (* The scaling and churn tiers run in the full suite and under their
     --*-only flags; the part-1/part-2 selections stay exactly the
     historical suites.  The routing micro tier rides inside the scaling
     suite (sharing its loaded netstates) and under --routing-only builds
     just its own two tiers. *)
  if !scaling_only || not (!part1_only || !part2_only || !churn_only || !routing_only)
  then scaling ();
  if !routing_only then routing_only_suite ();
  if !churn_only || not (!part1_only || !part2_only || !scaling_only || !routing_only)
  then churn ();
  if !micro then begin
    hr "MICRO-BENCHMARKS (Bechamel, reduced-scale kernels)";
    run_bechamel ()
  end;
  let total_wall = Unix.gettimeofday () -. t0 in
  Printf.printf "\ntotal wall time: %.1f s\n" total_wall;
  (* The hot-span table goes to stderr so profiling leaves stdout (and
     the CI identity diffs over it) untouched. *)
  let prof_report =
    if !profile then begin
      let r = Sim.Prof.report () in
      Sim.Prof.print_top Format.err_formatter;
      Some r
    end
    else None
  in
  (match !json_path with
  | None -> ()
  | Some path ->
    let suite =
      if !part1_only then "part1"
      else if !part2_only then "part2"
      else if !scaling_only then "scaling"
      else if !churn_only then "churn"
      else if !routing_only then "routing"
      else "full"
    in
    write_json ~path ~suite ~omit_timings:!omit_timings ~total_wall
      ~profile:prof_report)
